//! The parallel runner must be invisible in the output: `--jobs N` and
//! `--jobs 1` produce byte-identical tables, because every cell owns its
//! own `System` and results are reassembled in grid order.

use cmm_bench::figures::{self, EvalConfig};
use cmm_bench::report;
use cmm_bench::runner::parallel_map;
use cmm_core::experiment::ExperimentConfig;
use cmm_core::policy::Mechanism;
use cmm_sim::config::SystemConfig;
use cmm_workloads::spec;

/// A deliberately tiny evaluation config so the test runs in seconds.
fn tiny_eval(jobs: usize) -> EvalConfig {
    let mut exp = ExperimentConfig::quick();
    exp.total_cycles = 400_000;
    exp.alone_cycles = 150_000;
    exp.warmup_cycles = 150_000;
    EvalConfig { exp, mixes_per_category: 1, seed: 42, jobs, attempts: 1, trace_mixes: None }
}

/// Fig. 7 (normalised HS and worst-case slowdown under PT) renders to the
/// same bytes whether the (mix × mechanism) matrix ran serially or on
/// four threads.
#[test]
fn fig7_is_byte_identical_across_job_counts() {
    let mechs = [Mechanism::Pt];
    let serial = figures::evaluate(&mechs, &tiny_eval(1), false);
    let parallel = figures::evaluate(&mechs, &tiny_eval(4), false);

    let (s_hs, s_ws) = figures::fig7(&serial);
    let (p_hs, p_ws) = figures::fig7(&parallel);
    assert_eq!(report::render(&s_hs), report::render(&p_hs), "Fig. 7 HS rows diverged");
    assert_eq!(report::render(&s_ws), report::render(&p_ws), "Fig. 7 worst-case rows diverged");
}

/// Table I rows (per-benchmark characterisation) are byte-identical too:
/// each benchmark simulates in its own `System` regardless of scheduling.
#[test]
fn table1_rows_are_byte_identical_across_job_counts() {
    let sys = SystemConfig::scaled(1);
    let cfg = {
        let mut c = cmm_bench::characterize::CharacterizeConfig::quick();
        c.warmup = 300_000;
        c.measure = 150_000;
        c
    };
    let roster = &spec::roster()[..6];
    let row = |b: &spec::Benchmark| {
        let r = cmm_bench::characterize::run_alone(b, &sys, &cfg, true, None);
        format!(
            "{} {:.3} {} {:.4} {:.2} {:.2} {:.3}",
            b.name,
            r.ipc,
            r.metrics.l2_llc_traffic,
            r.metrics.l2_ptr,
            r.metrics.pga,
            r.metrics.l2_pmr,
            r.metrics.llc_pt
        )
    };
    let serial: Vec<String> = parallel_map(roster, 1, |_, b| row(b));
    let parallel: Vec<String> = parallel_map(roster, 4, |_, b| row(b));
    assert_eq!(serial, parallel, "Table I rows diverged between --jobs 1 and --jobs 4");
}
