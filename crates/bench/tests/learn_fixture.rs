//! Format-stability gate for `cmm-model/1`: the committed fixture
//! `benchmarks/fixtures/mlsel.model` must keep decoding, and re-encoding
//! it must reproduce the committed bytes exactly. A failure here means the
//! model format (or the float formatting it relies on) changed — which
//! requires a version bump, not a silent re-train.
//!
//! The CLI contract rides along: `repro learn --model` must exit 2 — the
//! usage-error code, distinct from the gate-failure exit 1 — on any
//! magic/version/checksum rejection.

use cmm_learn::{Model, ModelError, MODEL_MAGIC, N_FEATURES};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/fixtures/mlsel.model")
}

fn fixture_text() -> String {
    std::fs::read_to_string(fixture_path())
        .expect("fixture benchmarks/fixtures/mlsel.model must exist")
}

#[test]
fn fixture_decodes_and_reencodes_byte_identically() {
    let text = fixture_text();
    let m = Model::from_text(&text).expect("committed fixture must decode");
    assert_eq!(m.labels, vec![0x0, 0x3, 0xf], "fixture classifies the three 0x1A4 images");
    assert_eq!(m.weights.len(), 3);
    assert!(m.weights.iter().all(|w| w.len() == N_FEATURES + 1));
    assert_eq!(m.to_text(), text, "re-encoding must reproduce the committed bytes");
}

#[test]
fn fixture_predictions_are_usable() {
    let m = Model::from_text(&fixture_text()).unwrap();
    // Any feature vector must yield a proper posterior over the 3 classes.
    let p = m.predict(&[1.2, 0.4, 0.1, 0.02, 1.8, 0.7, 0.3, 0.05]);
    assert!(p.class < m.labels.len());
    assert!(p.confidence > 1.0 / 3.0 && p.confidence <= 1.0);
}

#[test]
fn wrong_magic_version_and_checksum_are_distinct_rejections() {
    let text = fixture_text();
    assert!(matches!(
        Model::from_text(&text.replacen(MODEL_MAGIC, "not-a-model/1", 1)),
        Err(ModelError::BadMagic)
    ));
    assert!(matches!(
        Model::from_text(&text.replacen("cmm-model/1", "cmm-model/9", 1)),
        Err(ModelError::BadVersion(_))
    ));
    // Flip one weight digit: the checksum no longer matches the body.
    let corrupt = text.replacen("w 0 ", "w 0 9", 1);
    assert!(matches!(Model::from_text(&corrupt), Err(ModelError::BadChecksum { .. })));
    // Drop the checksum line entirely: a parse error, not a silent accept.
    let headless: String =
        text.lines().filter(|l| !l.starts_with("checksum")).map(|l| format!("{l}\n")).collect();
    assert!(matches!(Model::from_text(&headless), Err(ModelError::Parse(_))));
}

/// Runs the real binary: `repro learn --model <path>` must exit 2 on a
/// corrupt model without running any simulation.
#[test]
fn cli_rejects_a_corrupt_model_with_exit_2() {
    let dir = std::env::temp_dir().join(format!("cmm-learn-fixture-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("corrupt.model");
    std::fs::write(&bad, fixture_text().replacen("w 0 ", "w 0 9", 1)).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["learn", "--quick", "--model"])
        .arg(&bad)
        .current_dir(&dir)
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "corrupt model must be a usage error (exit 2)");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum"), "stderr names the rejection: {stderr}");
    // Missing file: same exit class.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["learn", "--quick", "--model", "does-not-exist.model"])
        .current_dir(&dir)
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
