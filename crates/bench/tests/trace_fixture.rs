//! Format-stability gate for `cmm-trace/1`: the committed fixture
//! `benchmarks/fixtures/trace_sample.trc` must keep decoding, and
//! re-encoding it must reproduce the committed bytes exactly. A failure
//! here means the binary format changed — which requires a version bump,
//! not a silent re-encode.

use cmm_trace::{binary, Trace, TraceError};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../benchmarks/fixtures/trace_sample.trc")
}

fn fixture_bytes() -> Vec<u8> {
    std::fs::read(fixture_path()).expect("fixture benchmarks/fixtures/trace_sample.trc must exist")
}

#[test]
fn fixture_decodes_and_reencodes_byte_identically() {
    let bytes = fixture_bytes();
    assert!(binary::is_binary(&bytes), "fixture must be a cmm-trace/1 binary file");
    let t = Trace::from_bytes(&bytes).expect("committed fixture must decode");
    assert_eq!(t.len(), 512, "fixture was recorded with --ops 512");
    assert_eq!(t.to_binary(), bytes, "re-encoding must reproduce the committed bytes");
    // And the text round trip preserves the stream too.
    let back = Trace::from_text(&t.to_text()).unwrap();
    assert_eq!(back, t);
}

#[test]
fn fixture_stats_are_stable() {
    let t = Trace::from_bytes(&fixture_bytes()).unwrap();
    let s = t.stats();
    assert_eq!((s.ops, s.loads, s.stores, s.computes), (512, 192, 64, 256));
    assert!(s.est_mlp >= 2, "libq_stream-style trace must look memory-parallel");
}

#[test]
fn truncated_fixture_is_rejected() {
    let bytes = fixture_bytes();
    let cut = &bytes[..bytes.len() - 7];
    assert!(
        matches!(Trace::from_bytes(cut), Err(TraceError::Truncated)),
        "a torn fixture must be rejected, not half-read"
    );
}
