//! Crash-safety integration tests: an interrupted evaluation resumed from
//! its `cmm-ckpt/1` sidecar must produce byte-identical reports and
//! journal content to an uninterrupted run, and a torn checkpoint tail
//! must salvage rather than poison the resume.

use std::fs;
use std::path::PathBuf;

use cmm_bench::checkpoint::Checkpoint;
use cmm_bench::figures::{self, EvalConfig};
use cmm_bench::{journal, report};
use cmm_core::experiment::ExperimentConfig;
use cmm_core::policy::Mechanism;
use cmm_core::telemetry::config_digest;

/// A deliberately tiny evaluation so the test runs in seconds.
fn tiny_eval() -> EvalConfig {
    let mut exp = ExperimentConfig::quick();
    exp.total_cycles = 400_000;
    exp.alone_cycles = 150_000;
    exp.warmup_cycles = 150_000;
    EvalConfig { exp, mixes_per_category: 1, seed: 42, jobs: 2, attempts: 1, trace_mixes: None }
}

/// Unique scratch path per test (no tempfile crate in the image).
fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("cmm_crash_safety_{}_{name}", std::process::id()));
    let _ = fs::remove_file(&p);
    p
}

/// Renders an evaluation to the full comparison surface: every Fig. 7
/// table plus the journal epoch lines (the bytes `repro` would emit).
fn surface(eval: &figures::Evaluation) -> String {
    let (hs, ws) = figures::fig7(eval);
    let man = journal::manifest(&journal::JournalMeta {
        target: "fig7".into(),
        quick: true,
        seed: 42,
        config_debug: "crash-safety-test".into(),
        topology: None,
        mba: false,
        governor: false,
        learn: false,
    });
    format!(
        "{}{}{}",
        report::render(&hs),
        report::render(&ws),
        journal::render(&man, &journal::eval_cells(eval))
    )
}

#[test]
fn resume_is_byte_identical_to_a_fresh_run() {
    let cfg = tiny_eval();
    let mechs = [Mechanism::Pt];
    let digest = config_digest("crash-safety-test");

    // Reference: uncheckpointed, uninterrupted run.
    let fresh = figures::evaluate_resumable(&mechs, &cfg, false, None).expect("fresh run");
    let want = surface(&fresh);

    // First run populates the sidecar.
    let path = scratch("resume.ckpt");
    let (ckpt, info) = Checkpoint::open(&path, "fig7", &digest).expect("new checkpoint");
    assert!(info.fresh);
    let populated =
        figures::evaluate_resumable(&mechs, &cfg, false, Some(&ckpt)).expect("populating run");
    assert_eq!(surface(&populated), want, "checkpointing must not change the output");
    drop(ckpt);

    // Simulate an interruption: keep the manifest plus the first two cell
    // records, as if the process died mid-sweep.
    let text = fs::read_to_string(&path).expect("sidecar exists");
    let keep: Vec<&str> = text.lines().take(3).collect();
    assert!(keep.len() == 3, "expected a manifest and at least two cells, got {}", text.len());
    fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

    // Resume: two cells splice from cache, the rest re-run.
    let (ckpt, info) = Checkpoint::open(&path, "fig7", &digest).expect("reopen");
    assert!(!info.fresh);
    assert_eq!(info.cached, 2, "exactly the two kept cells are cached");
    let resumed =
        figures::evaluate_resumable(&mechs, &cfg, false, Some(&ckpt)).expect("resumed run");
    assert_eq!(surface(&resumed), want, "resumed output must be byte-identical");

    // And at a different parallelism, still byte-identical.
    let serial = EvalConfig { jobs: 1, ..tiny_eval() };
    let (ckpt, _) = Checkpoint::open(&path, "fig7", &digest).expect("reopen serial");
    let resumed_serial =
        figures::evaluate_resumable(&mechs, &serial, false, Some(&ckpt)).expect("serial resume");
    assert_eq!(surface(&resumed_serial), want, "resume must be --jobs invariant");

    let _ = fs::remove_file(&path);
}

#[test]
fn torn_checkpoint_tail_salvages_and_resume_still_matches() {
    let cfg = tiny_eval();
    let mechs = [Mechanism::Pt];
    let digest = config_digest("crash-safety-test");

    let fresh = figures::evaluate_resumable(&mechs, &cfg, false, None).expect("fresh run");
    let want = surface(&fresh);

    let path = scratch("torn.ckpt");
    let (ckpt, _) = Checkpoint::open(&path, "fig7", &digest).expect("new checkpoint");
    figures::evaluate_resumable(&mechs, &cfg, false, Some(&ckpt)).expect("populating run");
    drop(ckpt);

    // Tear the final record mid-line, the signature of a crash mid-append.
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() - 25]).unwrap();

    let (ckpt, info) = Checkpoint::open(&path, "fig7", &digest).expect("torn tail salvages");
    assert_eq!(info.dropped, 1, "exactly the torn record is dropped");
    assert!(info.cached >= 1, "intact records survive the salvage");
    let resumed =
        figures::evaluate_resumable(&mechs, &cfg, false, Some(&ckpt)).expect("resumed run");
    assert_eq!(surface(&resumed), want, "salvaged resume must be byte-identical");

    let _ = fs::remove_file(&path);
}

#[test]
fn mismatched_checkpoint_is_refused() {
    let path = scratch("mismatch.ckpt");
    let digest = config_digest("crash-safety-test");
    let (ckpt, _) = Checkpoint::open(&path, "fig7", &digest).expect("new checkpoint");
    ckpt.record("alone: x", "{\"ipc\":1.0}");
    drop(ckpt);

    // Same file, different target → refused (a resume must never splice
    // another run's cells).
    let err = Checkpoint::open(&path, "fig8", &digest).expect_err("target mismatch");
    assert!(err.contains("fig7"), "error names the checkpoint's target: {err}");
    // Same target, different config digest → refused too.
    let err = Checkpoint::open(&path, "fig7", &config_digest("other-config"))
        .expect_err("digest mismatch");
    assert!(err.contains("digest"), "error names the digest mismatch: {err}");

    let _ = fs::remove_file(&path);
}
