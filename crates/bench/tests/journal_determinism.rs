//! The run journal must be a pure function of (workload, seed, config):
//! byte-identical across `--jobs` values and across repeated runs. This is
//! what lets CI diff journals and commit them as fixtures.

use cmm_bench::figures::{evaluate, EvalConfig};
use cmm_bench::journal::{self, JournalMeta};
use cmm_core::policy::Mechanism;

fn tiny_cfg(jobs: usize) -> EvalConfig {
    let mut cfg = EvalConfig::quick();
    cfg.mixes_per_category = 1;
    cfg.exp.total_cycles = 1_200_000;
    cfg.jobs = jobs;
    cfg
}

fn journal_text(jobs: usize) -> String {
    let eval = evaluate(&[Mechanism::CmmA], &tiny_cfg(jobs), false);
    let meta = JournalMeta {
        target: "test".into(),
        quick: true,
        seed: 42,
        config_debug: "determinism-test".into(),
        topology: None,
        mba: false,
        governor: false,
        learn: false,
    };
    journal::render(&journal::manifest(&meta), &journal::eval_cells(&eval))
}

#[test]
fn journal_is_byte_identical_across_job_counts() {
    let serial = journal_text(1);
    let threaded = journal_text(4);
    assert_eq!(serial, threaded, "journal must not depend on --jobs");
    // And it is substantive: a manifest plus real epoch records with
    // decisions in them.
    assert!(serial.lines().count() > 8, "{} lines", serial.lines().count());
    assert!(serial.starts_with("{\"schema\":\"cmm-journal/2\",\"kind\":\"manifest\""));
    assert!(serial.contains("\"mechanism\":\"CMM-a\""));
    assert!(serial.contains("\"hm_ipc\":"), "CMM runs must journal throttle trials");
}

#[test]
fn journal_summary_reads_a_real_journal() {
    let text = journal_text(2);
    let summary = journal::summarize(&text).expect("real journal must summarize");
    assert!(summary.contains("target=test"), "{summary}");
    assert!(summary.contains("CMM-a"), "{summary}");
    assert!(summary.contains("Baseline"), "{summary}");
}
