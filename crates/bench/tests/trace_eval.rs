//! Trace-driven evaluation end to end: record a mix to `cmm-trace/1`
//! files, load them back as a [`TraceSet`], and drive the evaluation
//! matrix from the trace mixes. The journal must be byte-identical
//! across `--jobs` values — the determinism contract of ISSUE/DESIGN
//! extends unchanged to trace workloads.

use cmm_bench::figures::{evaluate, EvalConfig};
use cmm_bench::journal::{self, JournalMeta};
use cmm_core::policy::Mechanism;
use cmm_workloads::TraceSet;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cmm_trace_eval_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records the default synthetic mix into `dir` and loads it back.
fn recorded_set(dir: &std::path::Path) -> TraceSet {
    let code = cmm_bench::tracecmd::run(
        &["record".into(), dir.display().to_string(), "PrefAgg-00".into()],
        42,
        4_000,
    );
    assert_eq!(code, 0, "trace record must succeed");
    TraceSet::load_dir(dir).expect("recorded traces must load")
}

fn tiny_cfg(set: &TraceSet, jobs: usize) -> EvalConfig {
    let mut cfg = EvalConfig::quick();
    cfg.mixes_per_category = 1;
    cfg.exp.total_cycles = 1_200_000;
    cfg.jobs = jobs;
    cfg.trace_mixes = Some(set.build_mixes(8));
    cfg
}

fn journal_text(set: &TraceSet, jobs: usize) -> String {
    let eval = evaluate(&[Mechanism::CmmA], &tiny_cfg(set, jobs), false);
    let meta = JournalMeta {
        target: "trace-test".into(),
        quick: true,
        seed: 42,
        config_debug: format!("trace-determinism-test;traces={}", set.digest()),
        topology: None,
        mba: false,
        governor: false,
        learn: false,
    };
    journal::render(&journal::manifest(&meta), &journal::eval_cells(&eval))
}

#[test]
fn trace_driven_journal_is_byte_identical_across_job_counts() {
    let dir = tmp_dir("jobs");
    let set = recorded_set(&dir);
    assert_eq!(set.files.len(), 8);

    let serial = journal_text(&set, 1);
    let threaded = journal_text(&set, 4);
    assert_eq!(serial, threaded, "trace-driven journal must not depend on --jobs");
    // Substantive journal: manifest + real controller epochs over the
    // trace mix.
    assert!(serial.starts_with("{\"schema\":\"cmm-journal/2\",\"kind\":\"manifest\""));
    assert!(serial.contains("\"run\":\"Trace-00: CMM-a\""), "trace mixes must be journalled");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_mixes_flow_through_the_evaluation() {
    let dir = tmp_dir("flow");
    let set = recorded_set(&dir);
    let eval = evaluate(&[Mechanism::Pt], &tiny_cfg(&set, 2), false);
    assert_eq!(eval.workloads.len(), 1, "8 traces -> one 8-core mix");
    let w = &eval.workloads[0];
    assert_eq!(w.mix.name, "Trace-00");
    assert_eq!(w.alone.len(), 8);
    assert!(w.alone.iter().all(|&i| i > 0.0), "replayed traces must execute");
    assert!(w.baseline.ipcs.iter().all(|&i| i > 0.0));
    assert!(w.managed.contains_key(&Mechanism::Pt));
    std::fs::remove_dir_all(&dir).ok();
}
