//! Per-access cost of the four prefetch engines under the traffic shapes
//! that exercise them: a confirmed stream (streamer runs ahead), strided
//! loads (IP-stride table hits) and random traffic (training churn).

use cmm_sim::prefetch::Battery;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn prefetchers(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetchers");
    g.throughput(Throughput::Elements(1));

    g.bench_function("battery_stream", |b| {
        let mut bat = Battery::new();
        let mut out = Vec::with_capacity(32);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            out.clear();
            bat.l1_access(0x400, addr, false, &mut out);
            bat.l2_access(0x400, addr, false, &mut out);
            std::hint::black_box(out.len())
        });
    });

    g.bench_function("battery_strided", |b| {
        let mut bat = Battery::new();
        let mut out = Vec::with_capacity(32);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 256;
            out.clear();
            bat.l1_access(0x400, addr, false, &mut out);
            std::hint::black_box(out.len())
        });
    });

    g.bench_function("battery_random", |b| {
        let mut bat = Battery::new();
        let mut out = Vec::with_capacity(32);
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        b.iter(|| {
            // xorshift for uncorrelated addresses
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.clear();
            bat.l1_access(0x400, x & 0xFFFF_FFC0, false, &mut out);
            bat.l2_access(0x400, x & 0xFFFF_FFC0, false, &mut out);
            std::hint::black_box(out.len())
        });
    });

    g.bench_function("battery_disabled", |b| {
        let mut bat = Battery::new();
        bat.write_msr(0xF);
        let mut out = Vec::with_capacity(32);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            out.clear();
            bat.l1_access(0x400, addr, false, &mut out);
            bat.l2_access(0x400, addr, false, &mut out);
            std::hint::black_box(out.len())
        });
    });

    g.finish();
}

criterion_group!(benches, prefetchers);
criterion_main!(benches);
