//! Substrate performance: simulated cycles per wall-clock second across
//! core counts. This bounds how long the figure-regeneration suite takes
//! and documents the cost of the simulation approach itself.

use cmm_sim::config::SystemConfig;
use cmm_sim::System;
use cmm_workloads::build_mixes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for &cores in &[1usize, 4, 8] {
        let cycles = 200_000u64;
        g.throughput(Throughput::Elements(cycles * cores as u64));
        g.bench_with_input(BenchmarkId::new("mixed_workload", cores), &cores, |b, &cores| {
            let mix = &build_mixes(42, 1)[1];
            b.iter_batched(
                || {
                    let mut cfg = SystemConfig::scaled(cores);
                    cfg.set_num_cores(cores);
                    let ws = mix
                        .instantiate(cfg.llc.size_bytes)
                        .into_iter()
                        .take(cores)
                        .collect::<Vec<_>>();
                    System::new(cfg, ws)
                },
                |mut sys| {
                    sys.run(cycles);
                    sys
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
