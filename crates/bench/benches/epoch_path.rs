//! Wall-clock cost of the detect → search → apply epoch path, stage by
//! stage, plus the overhead of running the same epoch through the
//! fault-injection decorator (zero fault rate — pure interposition cost).
//!
//! `ablations.rs` times whole profiling epochs across mechanisms; this
//! bench decomposes one CMM-a epoch so a regression can be attributed to
//! the detection cascade, the throttle search, or the MSR apply path.

use cmm_core::backend::{self, PartitionPlan};
use cmm_core::driver::Driver;
use cmm_core::fault::{FaultConfig, FaultySubstrate};
use cmm_core::frontend::DetectorConfig;
use cmm_core::policy::{ControllerConfig, Mechanism};
use cmm_sim::config::SystemConfig;
use cmm_sim::System;
use cmm_workloads::build_mixes;
use criterion::{criterion_group, criterion_main, Criterion};

fn warm_system() -> System {
    let mix = build_mixes(42, 1).remove(1);
    let cfg = SystemConfig::scaled(mix.num_cores());
    let mut sys = System::new(cfg.clone(), mix.instantiate(cfg.llc.size_bytes));
    sys.run(400_000);
    sys
}

fn epoch_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch_path");
    g.sample_size(10);
    let ctrl = ControllerConfig::quick();
    let det = DetectorConfig::default();

    g.bench_function("detect", |b| {
        b.iter_batched(
            warm_system,
            |mut sys| {
                backend::detect(&mut sys, &ctrl, &det);
                sys
            },
            criterion::BatchSize::LargeInput,
        );
    });

    g.bench_function("pt_profile", |b| {
        b.iter_batched(
            warm_system,
            |mut sys| {
                cmm_core::backend::pt::profile(&mut sys, &ctrl, &det, &mut Vec::new());
                sys
            },
            criterion::BatchSize::LargeInput,
        );
    });

    g.bench_function("plan_apply", |b| {
        b.iter_batched(
            warm_system,
            |mut sys| {
                let ways = sys.config().llc.ways;
                let plan = PartitionPlan::flat(sys.num_cores(), ways);
                plan.apply(&mut sys, &mut Vec::new()).unwrap();
                sys
            },
            criterion::BatchSize::LargeInput,
        );
    });

    g.bench_function("cmm_a_epoch", |b| {
        b.iter_batched(
            || Driver::new(warm_system(), Mechanism::CmmA, ctrl.clone()),
            |mut drv| {
                drv.epoch();
                drv
            },
            criterion::BatchSize::LargeInput,
        );
    });

    // Same epoch behind the fault decorator at rate 0: measures the pure
    // cost of the Substrate indirection + passthrough schedule draws.
    g.bench_function("cmm_a_epoch_faulty_passthrough", |b| {
        b.iter_batched(
            || {
                let sys = FaultySubstrate::new(warm_system(), FaultConfig::none());
                Driver::new(sys, Mechanism::CmmA, ctrl.clone())
            },
            |mut drv| {
                drv.epoch();
                drv
            },
            criterion::BatchSize::LargeInput,
        );
    });

    g.finish();
}

criterion_group!(benches, epoch_path);
criterion_main!(benches);
