//! Cost of one ML-Sel inference step (feature extraction + classifier
//! predict for all 8 cores) against the work it replaces: a CMM-a
//! profiling trial runs the whole machine for `sample_cycles`, while the
//! classifier is a fixed-size dot product per core. EXPERIMENTS.md quotes
//! the resulting ratio (inference is orders of magnitude below one trial).

use cmm_core::learned;
use cmm_learn::{Model, N_FEATURES};
use cmm_sim::pmu::PmuDelta;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// A fitted-looking 3-class model with non-trivial weights (the committed
/// fixture's shape) — the predict cost depends only on dimensions.
fn model() -> Model {
    let weights = (0..3)
        .map(|c| (0..=N_FEATURES).map(|j| 0.05 * (c as f64 + 1.0) - 0.01 * j as f64).collect())
        .collect();
    Model { labels: vec![0x0, 0x3, 0xf], weights }
}

/// A busy-core PMU delta, so feature extraction exercises every ratio.
fn delta() -> PmuDelta {
    PmuDelta {
        cycles: 1_200_000,
        instructions: 900_000,
        l2_dm_req: 40_000,
        l2_dm_miss: 9_000,
        l2_pf_req: 22_000,
        l2_pf_miss: 6_000,
        l3_load_miss: 4_000,
        stall_cycles: 300_000,
        mem_demand_bytes: 1_280_000,
        mem_prefetch_bytes: 1_024_000,
        mem_writeback_bytes: 256_000,
        pf_used: 15_000,
        pf_wasted: 4_000,
        ..PmuDelta::default()
    }
}

fn learn_inference(c: &mut Criterion) {
    let m = model();
    let d = delta();
    let mut g = c.benchmark_group("learn_inference");
    // One controller epoch's worth of inference: 8 cores, each a feature
    // extraction plus a classifier predict.
    g.throughput(Throughput::Elements(8));
    g.bench_function("mlsel_epoch_8cores", |b| {
        b.iter(|| {
            let mut last = None;
            for _ in 0..8 {
                let f = learned::core_features(std::hint::black_box(&d));
                last = Some(m.predict(&f));
            }
            std::hint::black_box(last)
        });
    });
    g.finish();
}

criterion_group!(benches, learn_inference);
criterion_main!(benches);
