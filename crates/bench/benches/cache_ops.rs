//! Hot-path microbenchmarks of the set-associative cache: hits, misses,
//! masked (CAT) insertion and QBS victim selection.

use cmm_sim::cache::Cache;
use cmm_sim::config::CacheGeometry;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn llc() -> Cache {
    Cache::new(CacheGeometry { size_bytes: 2560 << 10, ways: 20, hit_latency: 40 })
}

fn cache_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_ops");
    g.throughput(Throughput::Elements(1));

    g.bench_function("hit", |b| {
        let mut cache = llc();
        cache.insert(42, false, u64::MAX);
        b.iter(|| std::hint::black_box(cache.access(42)));
    });

    g.bench_function("miss", |b| {
        let mut cache = llc();
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(0x9E37_79B9); // never repeats soon
            std::hint::black_box(cache.access(line))
        });
    });

    g.bench_function("insert_full_mask", |b| {
        let mut cache = llc();
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            std::hint::black_box(cache.insert(line, false, u64::MAX))
        });
    });

    g.bench_function("insert_2way_mask", |b| {
        let mut cache = llc();
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            std::hint::black_box(cache.insert(line, false, 0b11))
        });
    });

    g.bench_function("insert_qbs_half_protected", |b| {
        let mut cache = llc();
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            std::hint::black_box(cache.insert_qbs(line, false, u64::MAX, &|l| l % 2 == 0))
        });
    });

    g.finish();
}

criterion_group!(benches, cache_ops);
criterion_main!(benches);
