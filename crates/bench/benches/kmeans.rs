//! Cost of the 1-D k-means used for group-level throttling (on the `Agg`
//! set's L2 PTRs) and the Dunn baseline (on per-core stalls) — the paper's
//! "practical and scalable" claim: clustering keeps the throttling search
//! at `2^k` settings no matter how many cores the machine has.

use cmm_metrics::kmeans_1d;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans_1d");
    for &n in &[8usize, 64, 512] {
        // Three traffic levels with jitter, like real PTR distributions.
        let values: Vec<f64> = (0..n)
            .map(|i| match i % 3 {
                0 => 0.001 + (i as f64) * 1e-6,
                1 => 0.02 + (i as f64) * 1e-5,
                _ => 0.05 + (i as f64) * 1e-5,
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("k3", n), &values, |b, v| {
            b.iter(|| std::hint::black_box(kmeans_1d(v, 3)));
        });
    }
    g.finish();
}

criterion_group!(benches, kmeans);
criterion_main!(benches);
