//! Wall-clock cost of the controller's decision machinery at different
//! settings — the time side of the ablations whose *quality* side is
//! produced by `repro ablate`:
//!
//! * one full profiling epoch per mechanism (detection + trial intervals);
//! * exhaustive vs k-means group-level throttling search.

use cmm_core::driver::Driver;
use cmm_core::policy::{ControllerConfig, Mechanism};
use cmm_sim::config::SystemConfig;
use cmm_sim::System;
use cmm_workloads::build_mixes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn managed(mechanism: Mechanism, ctrl: ControllerConfig) -> Driver {
    let mix = build_mixes(42, 1).remove(1);
    let cfg = SystemConfig::scaled(mix.num_cores());
    let mut sys = System::new(cfg.clone(), mix.instantiate(cfg.llc.size_bytes));
    sys.run(400_000);
    Driver::new(sys, mechanism, ctrl)
}

fn profiling_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiling_epoch");
    g.sample_size(10);
    for mech in [Mechanism::Pt, Mechanism::Dunn, Mechanism::PrefCp, Mechanism::CmmA] {
        g.bench_with_input(BenchmarkId::new("epoch", mech.label()), &mech, |b, &mech| {
            b.iter_batched(
                || managed(mech, ControllerConfig::quick()),
                |mut drv| {
                    drv.epoch();
                    drv
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn search_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("throttle_search");
    g.sample_size(10);
    // Exhaustive search on a small Agg set vs k-means grouping on a large
    // one: the sampling-interval count (2^k) dominates, so both must stay
    // bounded — the paper's scalability argument.
    for &(label, exhaustive_limit) in &[("exhaustive", 8usize), ("kmeans_groups", 3)] {
        g.bench_with_input(BenchmarkId::new("pt", label), &exhaustive_limit, |b, &lim| {
            b.iter_batched(
                || {
                    let mut ctrl = ControllerConfig::quick();
                    ctrl.exhaustive_limit = lim;
                    ctrl.throttle_groups = 3;
                    managed(Mechanism::Pt, ctrl)
                },
                |mut drv| {
                    drv.epoch();
                    drv
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, profiling_epoch, search_scaling);
criterion_main!(benches);
