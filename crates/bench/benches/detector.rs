//! Cost of one front-end pass: Table I metric computation plus the Fig. 5
//! cascade over 8 cores. The paper measures its kernel module below 0.1%
//! of machine time; this bench shows the detector itself is microseconds
//! per epoch, i.e. negligible next to the sampling intervals.

use cmm_core::frontend::{detect_agg, metrics, DetectorConfig};
use cmm_sim::pmu::Pmu;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn snapshot(i: u64) -> Pmu {
    Pmu {
        cycles: 40_000,
        instructions: 12_000 + i * 1000,
        l2_pf_req: 3_000 * (i % 3),
        l2_pf_miss: 2_500 * (i % 3),
        l2_dm_req: 900 + i * 17,
        l2_dm_miss: 700,
        l3_load_miss: 300,
        llc_pf_to_mem: 2_000 * (i % 3),
        stalls_l2_pending: 9_000 + i * 31,
        ..Pmu::default()
    }
}

fn detector(c: &mut Criterion) {
    let deltas: Vec<Pmu> = (0..8).map(snapshot).collect();
    let cfg = DetectorConfig::default();

    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(8));
    g.bench_function("metrics_8_cores", |b| {
        b.iter(|| deltas.iter().map(|d| std::hint::black_box(metrics(d)).l2_ptr).sum::<f64>());
    });
    g.bench_function("detect_agg_8_cores", |b| {
        b.iter(|| std::hint::black_box(detect_agg(&deltas, &cfg)));
    });
    g.finish();
}

criterion_group!(benches, detector);
criterion_main!(benches);
