//! The synthetic access-pattern engine.
//!
//! A [`Synthetic`] workload is an infinite loop of
//! `compute_per_access` compute cycles followed by one memory access whose
//! address comes from an [`AccessPattern`]. The pattern determines how the
//! hardware prefetchers react, which is what places a benchmark into the
//! paper's behavioural classes:
//!
//! | pattern | prefetcher reaction | SPEC analogue |
//! |---|---|---|
//! | `Stream` | streamer locks on, near-perfect coverage | 410.bwaves, 462.libquantum |
//! | `MultiStream` | several concurrent streams | 459.GemsFDTD |
//! | `PointerChase` | nothing trains (hot-skewed random node walk) | 429.mcf, 471.omnetpp |
//! | `BurstRandom` | streamer confirms on each burst then overshoots — aggressive *and useless* | the paper's "Rand Access" |
//! | `Random` | only the adjacent-line prefetcher fires (one wasted line per miss) | — |

use crate::rng::SplitMix64;
use cmm_sim::workload::{Op, Workload};

/// How addresses are generated within the working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Sequential walk with a fixed byte stride.
    Stream {
        /// Byte distance between consecutive accesses.
        stride: u64,
    },
    /// `streams` interleaved sequential walks, each in its own region of
    /// the working set.
    MultiStream {
        /// Number of concurrent streams (≥1).
        streams: u32,
        /// Byte stride within each stream.
        stride: u64,
    },
    /// Hot-skewed random walk over 128-byte nodes; untrainable by any of
    /// the four prefetchers (see the `next_addr` internals for why the
    /// node layout and skew match real chases).
    PointerChase,
    /// Jump to a random line, then touch `burst` consecutive lines —
    /// trains the streamer just enough to make it flood useless lines.
    /// With `hot_period > 0`, every `hot_period`-th access touches a small
    /// (32 KiB) hot region in chase order: the prefetch flood evicts those
    /// hot lines from L2, which is what makes the paper's "Rand Access"
    /// micro-benchmark *slower* with prefetching enabled.
    BurstRandom {
        /// Lines touched sequentially after each jump (≥3 to confirm the
        /// streamer).
        burst: u32,
        /// Period of hot-region accesses (0 = none).
        hot_period: u32,
    },
    /// Uniformly random lines.
    Random,
}

/// Full description of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Benchmark name (e.g. `"stream3d"`).
    pub name: String,
    /// Address generator.
    pub pattern: AccessPattern,
    /// Working-set size in bytes (rounded up to a power-of-two line count).
    pub working_set: u64,
    /// Compute cycles between consecutive memory accesses.
    pub compute_per_access: u32,
    /// Every `store_period`-th access is a store (0 = loads only).
    pub store_period: u32,
    /// Memory-level parallelism the pattern exposes to the core.
    pub mlp: u32,
    /// Base address of the working set (keeps cores in distinct address
    /// ranges; the simulator caches are physically indexed).
    pub base: u64,
    /// PRNG seed for the random patterns.
    pub seed: u64,
}

impl SyntheticConfig {
    fn lines(&self) -> u64 {
        (self.working_set / 64).next_power_of_two().max(2)
    }
}

/// A running instance of a [`SyntheticConfig`].
#[derive(Clone)]
pub struct Synthetic {
    cfg: SyntheticConfig,
    lines: u64,
    rng: SplitMix64,
    /// Byte cursor for `Stream`; per-stream byte cursors for `MultiStream`.
    cursors: Vec<u64>,
    next_stream: usize,
    /// Current line index for `PointerChase` / `BurstRandom`.
    line: u64,
    /// Hot-region cursor for `BurstRandom`.
    hot_line: u64,
    burst_left: u32,
    compute_left: u32,
    access_count: u64,
}

impl Synthetic {
    /// Instantiates the benchmark with cold state.
    pub fn new(cfg: SyntheticConfig) -> Self {
        let lines = cfg.lines();
        let cursors = match cfg.pattern {
            AccessPattern::MultiStream { streams, .. } => {
                assert!(streams >= 1);
                (0..streams as u64).map(|s| s * (lines / streams as u64) * 64).collect()
            }
            _ => vec![0],
        };
        let rng = SplitMix64::new(cfg.seed);
        Synthetic {
            lines,
            rng,
            cursors,
            next_stream: 0,
            line: 0,
            hot_line: 0,
            burst_left: 0,
            compute_left: 0,
            access_count: 0,
            cfg,
        }
    }

    /// The benchmark's configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.cfg
    }

    fn next_addr(&mut self) -> u64 {
        let span = self.lines * 64;
        let addr = match self.cfg.pattern {
            AccessPattern::Stream { stride } => {
                let a = self.cursors[0];
                self.cursors[0] = (a + stride) % span;
                a
            }
            AccessPattern::MultiStream { streams, stride } => {
                let s = self.next_stream;
                self.next_stream = (self.next_stream + 1) % streams as usize;
                let a = self.cursors[s];
                self.cursors[s] = (a + stride) % span;
                a
            }
            AccessPattern::PointerChase => {
                // Random walk over 128-byte *nodes*: chasing real list/tree
                // nodes touches ~100 bytes per hop, i.e. both lines of an
                // aligned pair. Random (rather than cyclic) node order
                // matters: a fixed-cycle permutation is LRU's worst case
                // and would make hit rate — and hence way sensitivity —
                // collapse to zero the moment the working set exceeds the
                // allocation. Random reuse gives the smooth
                // hit-rate ∝ allocated-capacity curve real chases show in
                // Fig. 3. The high line is touched first so the L1
                // next-line prefetcher sees a descending step and stays
                // quiet; the adjacent-line prefetcher's pair fetch is
                // *useful* here, exactly as on hardware.
                // Reuse is skewed: half the hops stay in a hot quarter of
                // the working set (real chases have strongly non-uniform
                // stack-distance profiles). The hot subset is what makes
                // hit rate grow smoothly with allocated ways while the
                // cold tail keeps demand bandwidth up.
                if self.burst_left == 0 {
                    let nodes = (self.lines / 2).max(2);
                    let hot_nodes = (nodes / 4).max(1);
                    self.line = if self.rng.next_u64() & 1 == 0 {
                        self.rng.below(hot_nodes)
                    } else {
                        self.rng.below(nodes)
                    };
                    self.burst_left = 1;
                    (self.line * 2 + 1) * 64
                } else {
                    self.burst_left = 0;
                    (self.line * 2) * 64
                }
            }
            AccessPattern::BurstRandom { burst, hot_period } => {
                if hot_period > 0 && self.access_count.is_multiple_of(hot_period as u64) {
                    let hot_lines = (self.lines / 4).clamp(2, 512);
                    self.hot_line =
                        (self.hot_line.wrapping_mul(5).wrapping_add(0x9E37_79B9)) & (hot_lines - 1);
                    return self.cfg.base + self.hot_line * 64;
                }
                // Bursts walk 128-byte elements (two lines apart): the
                // monotonic steps still confirm the streamer, but neither
                // the adjacent-line nor the next-line prefetcher ever
                // fetches anything the burst itself will touch — the flood
                // is pure pollution, as in the paper's micro-benchmark.
                if self.burst_left == 0 {
                    self.line = self.rng.below(self.lines);
                    self.burst_left = burst.max(1);
                }
                self.burst_left -= 1;
                let a = self.line * 64;
                self.line = (self.line + 2) & (self.lines - 1);
                a
            }
            AccessPattern::Random => self.rng.below(self.lines) * 64,
        };
        self.cfg.base + addr
    }
}

impl Workload for Synthetic {
    fn next(&mut self) -> Op {
        if self.compute_left > 0 {
            let c = self.compute_left;
            self.compute_left = 0;
            return Op::Compute { cycles: c };
        }
        self.compute_left = self.cfg.compute_per_access;
        self.access_count += 1;
        let addr = self.next_addr();
        // Distinct PCs per pattern stream so the IP-stride prefetcher can
        // train on strided loops the way it does on real loop bodies.
        let pc = 0x40_0000 + (self.next_stream as u64) * 4;
        if self.cfg.store_period > 0
            && self.access_count.is_multiple_of(self.cfg.store_period as u64)
        {
            Op::Store { addr, pc }
        } else {
            Op::Load { addr, pc }
        }
    }

    fn fill(&mut self, out: &mut Vec<Op>, n: usize) {
        // Same stream as `n` trait-object calls of `next`, but the inner
        // calls dispatch statically so the generator loop stays inlined.
        out.reserve(n);
        for _ in 0..n {
            out.push(Synthetic::next(self));
        }
    }

    fn mlp(&self) -> u32 {
        self.cfg.mlp
    }

    fn reset(&mut self) {
        *self = Synthetic::new(self.cfg.clone());
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pattern: AccessPattern) -> SyntheticConfig {
        SyntheticConfig {
            name: "t".into(),
            pattern,
            working_set: 1 << 20,
            compute_per_access: 0,
            store_period: 0,
            mlp: 4,
            base: 0,
            seed: 42,
        }
    }

    fn addrs(w: &mut Synthetic, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < n {
            if let Op::Load { addr, .. } | Op::Store { addr, .. } = w.next() {
                out.push(addr);
            }
        }
        out
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let mut w = Synthetic::new(cfg(AccessPattern::Stream { stride: 64 }));
        let a = addrs(&mut w, 5);
        assert_eq!(a, vec![0, 64, 128, 192, 256]);
        // Wraps at the working set.
        let span = 1u64 << 20;
        for _ in 0..(span / 64) {
            w.next();
        }
        assert!(addrs(&mut w, 1)[0] < span);
    }

    #[test]
    fn multistream_interleaves_regions() {
        let mut w = Synthetic::new(cfg(AccessPattern::MultiStream { streams: 2, stride: 64 }));
        let a = addrs(&mut w, 4);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 1 << 19); // second half of the working set
        assert_eq!(a[2], 64);
        assert_eq!(a[3], (1 << 19) + 64);
    }

    #[test]
    fn pointer_chase_covers_the_working_set_broadly() {
        let mut c = cfg(AccessPattern::PointerChase);
        c.working_set = 64 * 256; // 256 lines = 128 nodes
        let mut w = Synthetic::new(c);
        let a = addrs(&mut w, 1024);
        let mut lines: Vec<u64> = a.iter().map(|x| x / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        // Random hot-skewed node selection: after 4× the node count, well
        // over half the lines must have been touched (the cold half of the
        // draws alone covers 1 - e^-2 ≈ 86% of nodes).
        assert!(lines.len() > 160, "only {} of 256 lines touched", lines.len());
    }

    #[test]
    fn pointer_chase_touches_both_node_lines() {
        let mut w = Synthetic::new(cfg(AccessPattern::PointerChase));
        let a = addrs(&mut w, 100);
        for pair in a.chunks(2) {
            if pair.len() == 2 {
                // High line first, then the low line of the 128 B node.
                assert_eq!(pair[0] / 64, pair[1] / 64 + 1, "{pair:?}");
                assert_eq!(pair[1] % 128, 0, "nodes are 128-byte aligned: {pair:?}");
            }
        }
    }

    #[test]
    fn pointer_chase_is_jumpy() {
        let mut w = Synthetic::new(cfg(AccessPattern::PointerChase));
        let a = addrs(&mut w, 100);
        let ascending_steps = a.windows(2).filter(|p| p[1] / 64 == p[0] / 64 + 1).count();
        assert!(ascending_steps < 5, "chase must never look like an ascending stream");
    }

    #[test]
    fn burst_random_bursts_then_jumps() {
        let mut w = Synthetic::new(cfg(AccessPattern::BurstRandom { burst: 3, hot_period: 0 }));
        let a = addrs(&mut w, 30);
        let lines: Vec<u64> = a.iter().map(|x| x / 64).collect();
        // Within each triple, lines ascend by two (128-byte elements).
        for chunk in lines.chunks(3) {
            if chunk.len() == 3 {
                assert!(
                    chunk[1] == (chunk[0] + 2) % (1 << 14)
                        && chunk[2] == (chunk[1] + 2) % (1 << 14),
                    "burst not a stride-2 run: {chunk:?}"
                );
            }
        }
    }

    #[test]
    fn compute_ratio_respected() {
        let mut c = cfg(AccessPattern::Stream { stride: 64 });
        c.compute_per_access = 7;
        let mut w = Synthetic::new(c);
        // Ops alternate Load, Compute(7), Load, Compute(7), ...
        assert!(matches!(w.next(), Op::Load { .. }));
        assert!(matches!(w.next(), Op::Compute { cycles: 7 }));
        assert!(matches!(w.next(), Op::Load { .. }));
        assert!(matches!(w.next(), Op::Compute { cycles: 7 }));
    }

    #[test]
    fn store_period_emits_stores() {
        let mut c = cfg(AccessPattern::Stream { stride: 64 });
        c.store_period = 2;
        let mut w = Synthetic::new(c);
        let mut stores = 0;
        let mut loads = 0;
        for _ in 0..100 {
            match w.next() {
                Op::Store { .. } => stores += 1,
                Op::Load { .. } => loads += 1,
                _ => {}
            }
        }
        assert_eq!(stores, loads, "every second access must be a store");
    }

    #[test]
    fn reset_restores_initial_stream() {
        let mut w = Synthetic::new(cfg(AccessPattern::BurstRandom { burst: 3, hot_period: 0 }));
        let first = addrs(&mut w, 20);
        w.reset();
        let again = addrs(&mut w, 20);
        assert_eq!(first, again);
    }

    #[test]
    fn base_offsets_the_region() {
        let mut c = cfg(AccessPattern::Stream { stride: 64 });
        c.base = 1 << 30;
        let mut w = Synthetic::new(c);
        assert!(addrs(&mut w, 1)[0] >= 1 << 30);
    }

    #[test]
    fn determinism_across_instances() {
        let a = addrs(&mut Synthetic::new(cfg(AccessPattern::Random)), 50);
        let b = addrs(&mut Synthetic::new(cfg(AccessPattern::Random)), 50);
        assert_eq!(a, b);
    }
}
