//! The benchmark roster: named synthetic analogues of the SPEC CPU2006
//! programs the paper characterises, plus its "Rand Access"
//! micro-benchmark.
//!
//! Each entry declares the *intended* behavioural class
//! (Sec. IV-B of the paper); the Fig. 1–3 harness measures the actual
//! behaviour, and the integration tests assert that measurement and
//! declaration agree. Working sets are expressed relative to the LLC so the
//! roster works under both the paper-faithful and the scaled geometry.

use crate::pattern::{AccessPattern, Synthetic, SyntheticConfig};

/// Classification thresholds mirroring the paper's Sec. IV-B rules,
/// re-expressed for the simulator (bandwidths in bytes/cycle rather than
/// MB/s — the paper's 1500 MB/s at 2.1 GHz is ≈0.7 B/cycle).
pub mod thresholds {
    /// Demand bandwidth above this ⇒ *demand intensive* (paper: 1500 MB/s).
    pub const DEMAND_INTENSIVE_BPC: f64 = 0.5;
    /// Bandwidth increase from prefetching above this ⇒ *prefetch
    /// aggressive* (paper: +50 %).
    pub const AGGRESSIVE_BW_INCREASE: f64 = 0.5;
    /// IPC speedup from prefetching above this ⇒ *prefetch friendly*
    /// (paper Sec. IV-B: +30 %).
    pub const FRIENDLY_IPC_SPEEDUP: f64 = 0.3;
    /// Needing at least this many ways (of 20) for
    /// [`LLC_SENSITIVE_PERF`]×peak ⇒ *LLC sensitive* (paper: 8 ways, 80 %).
    pub const LLC_SENSITIVE_WAYS: u32 = 8;
    /// See [`LLC_SENSITIVE_WAYS`].
    pub const LLC_SENSITIVE_PERF: f64 = 0.8;
}

/// Intended behavioural class of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Class {
    /// Large working set, high demand bandwidth.
    pub demand_intensive: bool,
    /// High ratio of prefetch to demand requests (Fig. 1's +50 % BW rule).
    pub prefetch_aggressive: bool,
    /// ≥30 % IPC speedup from prefetching (implies aggressive in the
    /// paper's terminology).
    pub prefetch_friendly: bool,
    /// Needs ≥8 of 20 LLC ways for 80 % of peak IPC.
    pub llc_sensitive: bool,
}

impl Class {
    /// Prefetch friendly: aggressive and useful.
    pub const FRIENDLY: Class = Class {
        demand_intensive: true,
        prefetch_aggressive: true,
        prefetch_friendly: true,
        llc_sensitive: false,
    };
    /// Prefetch unfriendly: aggressive but useless (or harmful).
    pub const UNFRIENDLY: Class = Class {
        demand_intensive: true,
        prefetch_aggressive: true,
        prefetch_friendly: false,
        llc_sensitive: false,
    };
    /// Demand intensive, LLC sensitive, not prefetch aggressive.
    pub const LLC_SENSITIVE: Class = Class {
        demand_intensive: true,
        prefetch_aggressive: false,
        prefetch_friendly: false,
        llc_sensitive: true,
    };
    /// Cache-resident / compute bound.
    pub const COMPUTE: Class = Class {
        demand_intensive: false,
        prefetch_aggressive: false,
        prefetch_friendly: false,
        llc_sensitive: false,
    };
}

/// Working-set size, absolute or LLC-relative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkingSet {
    /// Fixed size in bytes (cache-resident benchmarks).
    Bytes(u64),
    /// Multiple of the LLC capacity (streaming / LLC-pressure benchmarks).
    LlcTimes(f64),
}

impl WorkingSet {
    /// Resolve against a concrete LLC size.
    pub fn bytes(&self, llc_bytes: u64) -> u64 {
        match *self {
            WorkingSet::Bytes(b) => b,
            WorkingSet::LlcTimes(f) => (llc_bytes as f64 * f) as u64,
        }
    }
}

/// One roster entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// Short name used in reports.
    pub name: &'static str,
    /// The SPEC CPU2006 program whose behaviour this generator mimics
    /// ("—" for the paper's hand-written micro-benchmark class).
    pub spec_alias: &'static str,
    /// Intended class.
    pub class: Class,
    /// Address generator.
    pub pattern: AccessPattern,
    /// Working-set size.
    pub working_set: WorkingSet,
    /// Compute cycles between memory accesses.
    pub compute_per_access: u32,
    /// Every n-th access is a store (0 = never).
    pub store_period: u32,
    /// Exposed memory-level parallelism.
    pub mlp: u32,
}

impl Benchmark {
    /// Instantiates a runnable copy. `base` separates address spaces of
    /// co-running benchmarks; `seed` perturbs the random patterns so two
    /// copies of one benchmark do not run in lockstep.
    pub fn instantiate(&self, llc_bytes: u64, base: u64, seed: u64) -> Synthetic {
        Synthetic::new(SyntheticConfig {
            name: self.name.to_string(),
            pattern: self.pattern,
            working_set: self.working_set.bytes(llc_bytes),
            compute_per_access: self.compute_per_access,
            store_period: self.store_period,
            mlp: self.mlp,
            base,
            seed,
        })
    }
}

/// The full roster.
pub const ROSTER: &[Benchmark] = &[
    // ---- prefetch friendly (aggressive AND useful) ---------------------
    Benchmark {
        name: "bwaves3d",
        spec_alias: "410.bwaves",
        class: Class::FRIENDLY,
        pattern: AccessPattern::Stream { stride: 8 },
        working_set: WorkingSet::LlcTimes(6.0),
        compute_per_access: 0,
        store_period: 0,
        mlp: 6,
    },
    Benchmark {
        name: "libq_stream",
        spec_alias: "462.libquantum",
        class: Class::FRIENDLY,
        pattern: AccessPattern::Stream { stride: 16 },
        working_set: WorkingSet::LlcTimes(4.0),
        compute_per_access: 1,
        store_period: 4,
        mlp: 6,
    },
    Benchmark {
        name: "leslie_grid",
        spec_alias: "437.leslie3d",
        class: Class::FRIENDLY,
        pattern: AccessPattern::Stream { stride: 128 },
        working_set: WorkingSet::LlcTimes(6.0),
        compute_per_access: 1,
        store_period: 0,
        mlp: 4,
    },
    Benchmark {
        name: "gems_fdtd",
        spec_alias: "459.GemsFDTD",
        class: Class::FRIENDLY,
        pattern: AccessPattern::MultiStream { streams: 3, stride: 8 },
        working_set: WorkingSet::LlcTimes(6.0),
        compute_per_access: 0,
        store_period: 5,
        mlp: 6,
    },
    Benchmark {
        name: "wrf_phys",
        spec_alias: "481.wrf",
        class: Class::FRIENDLY,
        pattern: AccessPattern::MultiStream { streams: 2, stride: 64 },
        working_set: WorkingSet::LlcTimes(3.0),
        compute_per_access: 2,
        store_period: 0,
        mlp: 4,
    },
    Benchmark {
        name: "milc_lattice",
        spec_alias: "433.milc",
        class: Class::FRIENDLY,
        pattern: AccessPattern::Stream { stride: 32 },
        working_set: WorkingSet::LlcTimes(4.0),
        compute_per_access: 2,
        store_period: 6,
        mlp: 4,
    },
    Benchmark {
        name: "lbm_fluid",
        spec_alias: "470.lbm",
        class: Class::FRIENDLY,
        pattern: AccessPattern::Stream { stride: 8 },
        working_set: WorkingSet::LlcTimes(6.0),
        compute_per_access: 0,
        store_period: 3,
        mlp: 6,
    },
    Benchmark {
        name: "zeus_mhd",
        spec_alias: "434.zeusmp",
        class: Class::FRIENDLY,
        pattern: AccessPattern::MultiStream { streams: 2, stride: 8 },
        working_set: WorkingSet::LlcTimes(3.0),
        compute_per_access: 1,
        store_period: 0,
        mlp: 5,
    },
    Benchmark {
        name: "cactus_grid",
        spec_alias: "436.cactusADM",
        class: Class::FRIENDLY,
        pattern: AccessPattern::MultiStream { streams: 4, stride: 16 },
        working_set: WorkingSet::LlcTimes(5.0),
        compute_per_access: 1,
        store_period: 7,
        mlp: 5,
    },
    Benchmark {
        name: "sphinx_speech",
        spec_alias: "482.sphinx3",
        class: Class::FRIENDLY,
        pattern: AccessPattern::Stream { stride: 48 },
        working_set: WorkingSet::LlcTimes(3.0),
        compute_per_access: 2,
        store_period: 0,
        mlp: 4,
    },
    // ---- prefetch unfriendly (aggressive but useless) ------------------
    Benchmark {
        name: "rand_access",
        spec_alias: "— (paper's micro-benchmark)",
        class: Class::UNFRIENDLY,
        pattern: AccessPattern::BurstRandom { burst: 3, hot_period: 4 },
        working_set: WorkingSet::LlcTimes(6.0),
        compute_per_access: 0,
        store_period: 0,
        mlp: 6,
    },
    Benchmark {
        name: "rand_access2",
        spec_alias: "— (micro-benchmark variant)",
        class: Class::UNFRIENDLY,
        pattern: AccessPattern::BurstRandom { burst: 3, hot_period: 5 },
        working_set: WorkingSet::LlcTimes(4.0),
        compute_per_access: 1,
        store_period: 0,
        mlp: 6,
    },
    Benchmark {
        name: "scatter_gather",
        spec_alias: "— (micro-benchmark variant)",
        class: Class::UNFRIENDLY,
        pattern: AccessPattern::BurstRandom { burst: 4, hot_period: 0 },
        working_set: WorkingSet::LlcTimes(8.0),
        compute_per_access: 0,
        store_period: 7,
        mlp: 8,
    },
    Benchmark {
        name: "hash_probe",
        spec_alias: "— (micro-benchmark variant)",
        class: Class::UNFRIENDLY,
        pattern: AccessPattern::BurstRandom { burst: 3, hot_period: 3 },
        working_set: WorkingSet::LlcTimes(8.0),
        compute_per_access: 2,
        store_period: 0,
        mlp: 6,
    },
    // ---- LLC sensitive, not prefetch aggressive ------------------------
    Benchmark {
        name: "mcf_refine",
        spec_alias: "429.mcf",
        class: Class::LLC_SENSITIVE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::LlcTimes(1.5),
        compute_per_access: 8,
        store_period: 0,
        mlp: 4,
    },
    Benchmark {
        name: "omnet_events",
        spec_alias: "471.omnetpp",
        class: Class::LLC_SENSITIVE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::LlcTimes(1.2),
        compute_per_access: 10,
        store_period: 6,
        mlp: 4,
    },
    Benchmark {
        name: "xalan_dom",
        spec_alias: "483.xalancbmk",
        class: Class::LLC_SENSITIVE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::LlcTimes(1.05),
        compute_per_access: 6,
        store_period: 0,
        mlp: 4,
    },
    Benchmark {
        name: "astar_path",
        spec_alias: "473.astar",
        class: Class::LLC_SENSITIVE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::LlcTimes(1.1),
        compute_per_access: 12,
        store_period: 0,
        mlp: 2,
    },
    Benchmark {
        name: "soplex_lp",
        spec_alias: "450.soplex",
        class: Class::LLC_SENSITIVE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::LlcTimes(1.3),
        compute_per_access: 6,
        store_period: 8,
        mlp: 4,
    },
    Benchmark {
        name: "gcc_opt",
        spec_alias: "403.gcc",
        class: Class::LLC_SENSITIVE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::LlcTimes(1.15),
        compute_per_access: 7,
        store_period: 9,
        mlp: 3,
    },
    Benchmark {
        name: "dealii_fem",
        spec_alias: "447.dealII",
        class: Class::LLC_SENSITIVE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::LlcTimes(1.25),
        compute_per_access: 9,
        store_period: 0,
        mlp: 3,
    },
    // ---- non demand intensive (cache resident / compute bound) ---------
    Benchmark {
        name: "povray_rt",
        spec_alias: "453.povray",
        class: Class::COMPUTE,
        pattern: AccessPattern::Stream { stride: 8 },
        working_set: WorkingSet::Bytes(16 << 10),
        compute_per_access: 8,
        store_period: 0,
        mlp: 2,
    },
    Benchmark {
        name: "namd_md",
        spec_alias: "444.namd",
        class: Class::COMPUTE,
        pattern: AccessPattern::Stream { stride: 16 },
        working_set: WorkingSet::Bytes(128 << 10),
        compute_per_access: 6,
        store_period: 9,
        mlp: 2,
    },
    Benchmark {
        name: "gobmk_ai",
        spec_alias: "445.gobmk",
        class: Class::COMPUTE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::Bytes(64 << 10),
        compute_per_access: 10,
        store_period: 0,
        mlp: 1,
    },
    Benchmark {
        name: "hmmer_search",
        spec_alias: "456.hmmer",
        class: Class::COMPUTE,
        pattern: AccessPattern::Stream { stride: 8 },
        working_set: WorkingSet::Bytes(192 << 10),
        compute_per_access: 4,
        store_period: 5,
        mlp: 2,
    },
    Benchmark {
        name: "h264_enc",
        spec_alias: "464.h264ref",
        class: Class::COMPUTE,
        pattern: AccessPattern::MultiStream { streams: 2, stride: 32 },
        working_set: WorkingSet::Bytes(96 << 10),
        compute_per_access: 6,
        store_period: 4,
        mlp: 2,
    },
    Benchmark {
        name: "sjeng_chess",
        spec_alias: "458.sjeng",
        class: Class::COMPUTE,
        pattern: AccessPattern::PointerChase,
        working_set: WorkingSet::Bytes(32 << 10),
        compute_per_access: 12,
        store_period: 0,
        mlp: 1,
    },
    Benchmark {
        name: "perl_interp",
        spec_alias: "400.perlbench",
        class: Class::COMPUTE,
        pattern: AccessPattern::MultiStream { streams: 2, stride: 24 },
        working_set: WorkingSet::Bytes(64 << 10),
        compute_per_access: 8,
        store_period: 6,
        mlp: 2,
    },
    Benchmark {
        name: "tonto_chem",
        spec_alias: "465.tonto",
        class: Class::COMPUTE,
        pattern: AccessPattern::Stream { stride: 8 },
        working_set: WorkingSet::Bytes(48 << 10),
        compute_per_access: 10,
        store_period: 0,
        mlp: 2,
    },
    Benchmark {
        name: "gromacs_md",
        spec_alias: "435.gromacs",
        class: Class::COMPUTE,
        pattern: AccessPattern::Stream { stride: 32 },
        working_set: WorkingSet::Bytes(160 << 10),
        compute_per_access: 5,
        store_period: 8,
        mlp: 2,
    },
];

/// The full roster (function form, for symmetry with the other crates).
pub fn roster() -> &'static [Benchmark] {
    ROSTER
}

/// Benchmarks in the prefetch-friendly class.
pub fn friendly() -> Vec<&'static Benchmark> {
    ROSTER.iter().filter(|b| b.class.prefetch_friendly).collect()
}

/// Benchmarks in the prefetch-unfriendly class (aggressive, not friendly).
pub fn unfriendly() -> Vec<&'static Benchmark> {
    ROSTER.iter().filter(|b| b.class.prefetch_aggressive && !b.class.prefetch_friendly).collect()
}

/// Benchmarks that are not prefetch aggressive.
pub fn non_aggressive() -> Vec<&'static Benchmark> {
    ROSTER.iter().filter(|b| !b.class.prefetch_aggressive).collect()
}

/// LLC-sensitive benchmarks.
pub fn llc_sensitive() -> Vec<&'static Benchmark> {
    ROSTER.iter().filter(|b| b.class.llc_sensitive).collect()
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    ROSTER.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_all_four_classes() {
        assert!(friendly().len() >= 4, "need ≥4 friendly benchmarks for Pref Fri mixes");
        assert!(unfriendly().len() >= 4, "need ≥4 unfriendly benchmarks for Pref Unfri mixes");
        assert!(llc_sensitive().len() >= 2, "mixes need ≥2 LLC-sensitive benchmarks");
        assert!(non_aggressive().len() >= 8, "Pref No Agg mixes need 8 non-aggressive");
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = ROSTER.iter().map(|b| b.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }

    #[test]
    fn class_flags_consistent() {
        for b in ROSTER {
            if b.class.prefetch_friendly {
                assert!(
                    b.class.prefetch_aggressive,
                    "{}: the paper's 'friendly' implies aggressive",
                    b.name
                );
            }
            if b.class.llc_sensitive {
                assert!(b.class.demand_intensive, "{}: sensitivity implies demand", b.name);
            }
        }
    }

    #[test]
    fn working_sets_resolve() {
        let llc = 2560 << 10;
        for b in ROSTER {
            let ws = b.working_set.bytes(llc);
            assert!(ws >= 4096, "{}: degenerate working set", b.name);
            if b.class.demand_intensive && !b.class.llc_sensitive {
                assert!(ws >= 2 * llc, "{}: intensive benchmarks must exceed the LLC", b.name);
            }
            if !b.class.demand_intensive {
                assert!(ws <= 256 << 10, "{}: compute benchmarks must be cache resident", b.name);
            }
        }
    }

    #[test]
    fn instantiation_uses_base_and_name() {
        let b = by_name("bwaves3d").unwrap();
        let w = b.instantiate(2560 << 10, 1 << 40, 1);
        assert_eq!(cmm_sim::workload::Workload::name(&w), "bwaves3d");
        assert_eq!(w.config().base, 1 << 40);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("rand_access").is_some());
        assert!(by_name("no_such_benchmark").is_none());
    }

    #[test]
    fn unfriendly_contains_the_papers_microbenchmark() {
        assert!(unfriendly().iter().any(|b| b.name == "rand_access"));
    }
}
