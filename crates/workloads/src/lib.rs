//! # cmm-workloads — synthetic SPEC-CPU2006-class benchmarks and mixes
//!
//! The paper evaluates CMM on SPEC CPU2006 plus a hand-written
//! "Rand Access" micro-benchmark. SPEC binaries (and 2.5 minutes of real
//! Xeon time per run) are not available to this reproduction, so this crate
//! provides *parameterised synthetic generators* that reproduce the
//! behavioural classes the evaluation depends on (Sec. IV-B):
//!
//! * **prefetch aggressive** — demand bandwidth above the intensity
//!   threshold *and* ≥50 % extra bandwidth from prefetching (Fig. 1);
//! * **prefetch friendly** — ≥30 % IPC speedup from prefetching (Fig. 2);
//! * **prefetch unfriendly** — aggressive but useless prefetching
//!   (the "Rand Access" class: slower *with* prefetching);
//! * **LLC sensitive** — needs ≥8 of 20 ways for 80 % of peak IPC (Fig. 3);
//! * **non demand intensive** — compute-bound, cache-resident.
//!
//! [`spec`] declares a named roster with each benchmark's intended class
//! (verified against measurement by the Fig. 1–3 harness and the
//! integration tests); [`mix`] builds the paper's four 10-workload
//! categories (Pref Fri / Pref Agg / Pref Unfri / Pref No Agg);
//! [`tracemix`] loads recorded-trace directories into the same [`Mix`]
//! shape so captured streams run the identical evaluation pipeline.

pub mod mix;
pub mod pattern;
pub mod phased;
pub mod rng;
pub mod spec;
pub mod tracemix;

pub use mix::{build_mixes, Category, Mix, Slot};
pub use pattern::{AccessPattern, Synthetic, SyntheticConfig};
pub use phased::Phased;
pub use spec::{roster, Benchmark, Class};
pub use tracemix::{TraceFile, TraceSet};
