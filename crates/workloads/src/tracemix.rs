//! Loading directories of trace files into evaluation mixes.
//!
//! `--trace-dir` hands the harness a directory of `.trc`/`.trace`/`.txt`
//! files (binary or text, sniffed by magic). [`TraceSet::load_dir`] loads
//! and validates them all up front — a corrupt trace fails the run before
//! any simulation — and [`TraceSet::build_mixes`] packs them into
//! fixed-width mixes with round-robin wrapping, so any file count maps
//! onto the evaluation's core count. [`TraceSet::digest`] summarises the
//! raw file bytes for the checkpoint config digest: resuming against a
//! different trace set must be refused, exactly like a changed seed.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use cmm_trace::binary::fnv1a64;
use cmm_trace::Trace;

use crate::mix::{Category, Mix, Slot};

/// One loaded trace file.
#[derive(Debug, Clone)]
pub struct TraceFile {
    /// The file stem, used as the slot/journal label.
    pub name: String,
    /// Where it was loaded from.
    pub path: PathBuf,
    /// FNV-1a-64 over the raw file bytes (format-sensitive on purpose:
    /// converting text→binary is a different input artifact).
    pub checksum: u64,
    /// The decoded recording.
    pub trace: Arc<Trace>,
}

/// All traces from one `--trace-dir`, in sorted-path order.
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// The loaded files, sorted by file name for load-order independence.
    pub files: Vec<TraceFile>,
}

/// File extensions recognised as traces.
const EXTENSIONS: [&str; 3] = ["trc", "trace", "txt"];

impl TraceSet {
    /// Loads every recognised trace file in `dir`. Errors are strings
    /// ready for CLI reporting; any unreadable, corrupt, or empty trace
    /// fails the whole load.
    pub fn load_dir(dir: &Path) -> Result<TraceSet, String> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read trace dir {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.is_file()
                    && p.extension()
                        .and_then(|x| x.to_str())
                        .is_some_and(|x| EXTENSIONS.contains(&x))
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("no trace files (*.trc, *.trace, *.txt) in {}", dir.display()));
        }
        let mut files = Vec::with_capacity(paths.len());
        let mut seen = std::collections::HashSet::new();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
                .unwrap_or_else(|| path.display().to_string());
            if !seen.insert(name.clone()) {
                return Err(format!("duplicate trace stem {name:?} in {}", dir.display()));
            }
            let bytes =
                std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let trace =
                Trace::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
            if trace.is_empty() {
                return Err(format!("{}: trace is empty", path.display()));
            }
            files.push(TraceFile { name, path, checksum: fnv1a64(&bytes), trace: Arc::new(trace) });
        }
        Ok(TraceSet { files })
    }

    /// Stable `name:checksum` summary of the whole set, folded into the
    /// checkpoint config digest so `--resume` refuses a changed trace set.
    pub fn digest(&self) -> String {
        let parts: Vec<String> =
            self.files.iter().map(|f| format!("{}:{:016x}", f.name, f.checksum)).collect();
        parts.join(",")
    }

    /// Packs the set into `cores`-wide mixes named `Trace-00`, `Trace-01`,
    /// …: `ceil(n / cores)` mixes, wrapping round-robin so every group is
    /// full width and every file appears at least once.
    pub fn build_mixes(&self, cores: usize) -> Vec<Mix> {
        assert!(cores > 0, "mixes need at least one core");
        let n = self.files.len();
        let groups = n.div_ceil(cores);
        (0..groups)
            .map(|g| {
                let slots: Vec<Slot> = (0..cores)
                    .map(|i| {
                        let f = &self.files[(g * cores + i) % n];
                        Slot::Trace { name: f.name.clone(), trace: f.trace.clone() }
                    })
                    .collect();
                Mix { name: format!("Trace-{g:02}"), category: Category::Trace, slots, seed: 0 }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_trace::Op;

    fn sample_trace(salt: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..32u64 {
            t.push(Op::Load { addr: (salt + i) * 64, pc: 0x400 });
        }
        t
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmm_tracemix_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_text_and_binary_and_orders_by_name() {
        let dir = tmp_dir("load");
        std::fs::write(dir.join("b.trc"), sample_trace(100).to_binary()).unwrap();
        std::fs::write(dir.join("a.txt"), sample_trace(1).to_text()).unwrap();
        std::fs::write(dir.join("ignored.json"), "{}").unwrap();
        let set = TraceSet::load_dir(&dir).unwrap();
        let names: Vec<&str> = set.files.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(set.files[0].trace.len(), 32);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_corrupt_empty_and_missing() {
        let dir = tmp_dir("reject");
        assert!(TraceSet::load_dir(&dir).unwrap_err().contains("no trace files"));
        std::fs::write(dir.join("bad.trc"), b"CMMTgarbage").unwrap();
        assert!(TraceSet::load_dir(&dir).is_err());
        std::fs::remove_file(dir.join("bad.trc")).unwrap();
        std::fs::write(dir.join("empty.txt"), "# nothing\n").unwrap();
        assert!(TraceSet::load_dir(&dir).unwrap_err().contains("empty"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_tracks_file_bytes() {
        let dir = tmp_dir("digest");
        std::fs::write(dir.join("a.trc"), sample_trace(1).to_binary()).unwrap();
        let d1 = TraceSet::load_dir(&dir).unwrap().digest();
        let d1_again = TraceSet::load_dir(&dir).unwrap().digest();
        assert_eq!(d1, d1_again, "digest must be stable");
        std::fs::write(dir.join("a.trc"), sample_trace(2).to_binary()).unwrap();
        let d2 = TraceSet::load_dir(&dir).unwrap().digest();
        assert_ne!(d1, d2, "changed trace bytes must change the digest");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_mixes_wraps_round_robin() {
        let dir = tmp_dir("mixes");
        for i in 0..3 {
            std::fs::write(dir.join(format!("t{i}.trc")), sample_trace(i).to_binary()).unwrap();
        }
        let set = TraceSet::load_dir(&dir).unwrap();
        let mixes = set.build_mixes(2);
        assert_eq!(mixes.len(), 2);
        assert_eq!(mixes[0].name, "Trace-00");
        assert_eq!(mixes[0].category, Category::Trace);
        let names: Vec<&str> =
            mixes.iter().flat_map(|m| m.slots.iter().map(|s| s.name())).collect();
        assert_eq!(names, ["t0", "t1", "t2", "t0"], "wrap fills the last mix");
        assert!(mixes.iter().all(|m| m.num_cores() == 2));
        std::fs::remove_dir_all(&dir).ok();
    }
}
