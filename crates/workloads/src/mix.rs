//! Multiprogrammed workload-mix construction (paper Sec. IV-B).
//!
//! Four categories of 8-benchmark mixes, 10 workloads each by default:
//!
//! * **Pref Fri** — 4 prefetch-friendly + 4 non-aggressive;
//! * **Pref Agg** — 2 friendly + 2 unfriendly + 4 non-aggressive;
//! * **Pref Unfri** — 4 unfriendly + 4 non-aggressive;
//! * **Pref No Agg** — 8 non-aggressive.
//!
//! Per the paper, the non-aggressive picks always include at least two
//! LLC-sensitive benchmarks. Benchmarks are drawn randomly (seeded) from
//! their class, and core placement is shuffled.

use crate::rng::SplitMix64;
use crate::spec::{self, Benchmark};
use cmm_sim::workload::Workload;

/// The four workload categories of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// 4 prefetch-friendly + 4 non-aggressive.
    PrefFri,
    /// 2 friendly + 2 unfriendly + 4 non-aggressive.
    PrefAgg,
    /// 4 unfriendly + 4 non-aggressive.
    PrefUnfri,
    /// 8 non-aggressive.
    PrefNoAgg,
}

impl Category {
    /// All four, in the order the paper's figures plot them.
    pub fn all() -> [Category; 4] {
        [Category::PrefFri, Category::PrefAgg, Category::PrefUnfri, Category::PrefNoAgg]
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::PrefFri => "Pref Fri",
            Category::PrefAgg => "Pref Agg",
            Category::PrefUnfri => "Pref Unfri",
            Category::PrefNoAgg => "Pref No Agg",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One 8-benchmark multiprogrammed workload.
#[derive(Debug, Clone)]
pub struct Mix {
    /// e.g. `"PrefAgg-03"`.
    pub name: String,
    /// The category it was built for.
    pub category: Category,
    /// One entry per core, in placement order.
    pub benchmarks: Vec<&'static Benchmark>,
    /// Seed used for per-instance perturbation.
    pub seed: u64,
}

impl Mix {
    /// Number of cores this mix occupies.
    pub fn num_cores(&self) -> usize {
        self.benchmarks.len()
    }

    /// Builds the runnable workloads, one per core, each in a disjoint
    /// 64 GiB address window.
    pub fn instantiate(&self, llc_bytes: u64) -> Vec<Box<dyn Workload + Send>> {
        self.benchmarks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let base = (i as u64 + 1) << 36;
                let w = b.instantiate(llc_bytes, base, self.seed ^ (i as u64).wrapping_mul(0x9E37));
                Box::new(w) as Box<dyn Workload + Send>
            })
            .collect()
    }
}

/// Draws `k` entries from `pool` without immediate repetition: the pool is
/// shuffled and consumed in order, reshuffling when exhausted, so every
/// class member appears before any repeats.
fn draw(pool: &[&'static Benchmark], k: usize, rng: &mut SplitMix64) -> Vec<&'static Benchmark> {
    assert!(!pool.is_empty());
    let mut out = Vec::with_capacity(k);
    let mut bag: Vec<&'static Benchmark> = Vec::new();
    while out.len() < k {
        if bag.is_empty() {
            bag = pool.to_vec();
            // Fisher–Yates.
            for i in (1..bag.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                bag.swap(i, j);
            }
        }
        out.push(bag.pop().expect("refilled above"));
    }
    out
}

/// Builds one mix of the given category.
pub fn build_mix(category: Category, index: usize, rng: &mut SplitMix64) -> Mix {
    let friendly = spec::friendly();
    let unfriendly = spec::unfriendly();
    let non_agg = spec::non_aggressive();
    let sensitive = spec::llc_sensitive();
    let insensitive_non_agg: Vec<&'static Benchmark> =
        non_agg.iter().copied().filter(|b| !b.class.llc_sensitive).collect();

    // Non-aggressive slots always include ≥2 LLC-sensitive benchmarks.
    let pick_non_agg = |n: usize, rng: &mut SplitMix64| -> Vec<&'static Benchmark> {
        let mut v = draw(&sensitive, 2, rng);
        v.extend(draw(&insensitive_non_agg, n - 2, rng));
        v
    };

    let mut benchmarks = match category {
        Category::PrefFri => {
            let mut v = draw(&friendly, 4, rng);
            v.extend(pick_non_agg(4, rng));
            v
        }
        Category::PrefAgg => {
            let mut v = draw(&friendly, 2, rng);
            v.extend(draw(&unfriendly, 2, rng));
            v.extend(pick_non_agg(4, rng));
            v
        }
        Category::PrefUnfri => {
            let mut v = draw(&unfriendly, 4, rng);
            v.extend(pick_non_agg(4, rng));
            v
        }
        Category::PrefNoAgg => pick_non_agg(8, rng),
    };

    // Shuffle core placement.
    for i in (1..benchmarks.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        benchmarks.swap(i, j);
    }

    let label = match category {
        Category::PrefFri => "PrefFri",
        Category::PrefAgg => "PrefAgg",
        Category::PrefUnfri => "PrefUnfri",
        Category::PrefNoAgg => "PrefNoAgg",
    };
    Mix { name: format!("{label}-{index:02}"), category, benchmarks, seed: rng.next_u64() }
}

/// Builds the evaluation's full workload set: `per_category` mixes for each
/// of the four categories, in the paper's plotting order
/// (Pref Fri, Pref Agg, Pref Unfri, Pref No Agg).
pub fn build_mixes(seed: u64, per_category: usize) -> Vec<Mix> {
    let mut rng = SplitMix64::new(seed);
    let mut mixes = Vec::with_capacity(4 * per_category);
    for cat in Category::all() {
        for i in 0..per_category {
            mixes.push(build_mix(cat, i, &mut rng));
        }
    }
    mixes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_class(m: &Mix, f: impl Fn(&Benchmark) -> bool) -> usize {
        m.benchmarks.iter().filter(|b| f(b)).count()
    }

    #[test]
    fn category_composition_rules() {
        let mixes = build_mixes(1, 10);
        assert_eq!(mixes.len(), 40);
        for m in &mixes {
            assert_eq!(m.num_cores(), 8, "{}", m.name);
            let fri = count_class(m, |b| b.class.prefetch_friendly);
            let unf = count_class(m, |b| b.class.prefetch_aggressive && !b.class.prefetch_friendly);
            let non = count_class(m, |b| !b.class.prefetch_aggressive);
            let sens = count_class(m, |b| b.class.llc_sensitive);
            match m.category {
                Category::PrefFri => {
                    assert_eq!((fri, unf, non), (4, 0, 4), "{}", m.name);
                }
                Category::PrefAgg => {
                    assert_eq!((fri, unf, non), (2, 2, 4), "{}", m.name);
                }
                Category::PrefUnfri => {
                    assert_eq!((fri, unf, non), (0, 4, 4), "{}", m.name);
                }
                Category::PrefNoAgg => {
                    assert_eq!((fri, unf, non), (0, 0, 8), "{}", m.name);
                }
            }
            assert!(sens >= 2, "{}: needs ≥2 LLC-sensitive, got {sens}", m.name);
        }
    }

    #[test]
    fn ordering_matches_paper_plots() {
        let mixes = build_mixes(7, 10);
        let cats: Vec<Category> = mixes.iter().map(|m| m.category).collect();
        for (i, c) in cats.iter().enumerate() {
            assert_eq!(*c, Category::all()[i / 10]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_mixes(99, 2);
        let b = build_mixes(99, 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            let xn: Vec<&str> = x.benchmarks.iter().map(|b| b.name).collect();
            let yn: Vec<&str> = y.benchmarks.iter().map(|b| b.name).collect();
            assert_eq!(xn, yn);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_mixes(1, 10);
        let b = build_mixes(2, 10);
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| {
                x.benchmarks.iter().map(|b| b.name).collect::<Vec<_>>()
                    == y.benchmarks.iter().map(|b| b.name).collect::<Vec<_>>()
            })
            .count();
        assert!(same < a.len(), "seeds must shuffle mixes");
    }

    #[test]
    fn instantiate_places_cores_in_disjoint_windows() {
        let m = &build_mixes(5, 1)[0];
        let ws = m.instantiate(2560 << 10);
        assert_eq!(ws.len(), 8);
        let names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        for (i, b) in m.benchmarks.iter().enumerate() {
            assert_eq!(names[i], b.name);
        }
    }

    #[test]
    fn draw_avoids_repeats_until_pool_exhausted() {
        let pool = spec::friendly();
        let mut rng = SplitMix64::new(3);
        let picks = draw(&pool, pool.len(), &mut rng);
        let mut names: Vec<&str> = picks.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), pool.len(), "first |pool| draws must be distinct");
    }
}
