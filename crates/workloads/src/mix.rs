//! Multiprogrammed workload-mix construction (paper Sec. IV-B).
//!
//! Four categories of 8-benchmark mixes, 10 workloads each by default:
//!
//! * **Pref Fri** — 4 prefetch-friendly + 4 non-aggressive;
//! * **Pref Agg** — 2 friendly + 2 unfriendly + 4 non-aggressive;
//! * **Pref Unfri** — 4 unfriendly + 4 non-aggressive;
//! * **Pref No Agg** — 8 non-aggressive.
//!
//! Per the paper, the non-aggressive picks always include at least two
//! LLC-sensitive benchmarks. Benchmarks are drawn randomly (seeded) from
//! their class, and core placement is shuffled.
//!
//! A mix's per-core slots are usually synthetic [`Benchmark`]s, but can
//! also be recorded traces (see [`Slot::Trace`] and
//! [`crate::tracemix::TraceSet`]) so captured access streams run through
//! the identical evaluation pipeline.

use std::sync::Arc;

use crate::rng::SplitMix64;
use crate::spec::{self, Benchmark};
use cmm_sim::workload::Workload;
use cmm_trace::{Trace, TraceWorkload};

/// Address-window geometry shared by synthetic and trace-driven cores:
/// core `i` owns the 64 GiB window based at `(i + 1) << 36`.
pub const WINDOW_SHIFT: u32 = 36;

/// The workload categories of the evaluation: the paper's four synthetic
/// classes plus [`Category::Trace`] for recorded-stream mixes. `all()`
/// stays the four synthetic categories so figure grids are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// 4 prefetch-friendly + 4 non-aggressive.
    PrefFri,
    /// 2 friendly + 2 unfriendly + 4 non-aggressive.
    PrefAgg,
    /// 4 unfriendly + 4 non-aggressive.
    PrefUnfri,
    /// 8 non-aggressive.
    PrefNoAgg,
    /// Recorded traces loaded from files (`--trace-dir`).
    Trace,
}

impl Category {
    /// The four synthetic categories, in the order the paper's figures
    /// plot them ([`Category::Trace`] is deliberately excluded: it only
    /// appears when trace mixes are supplied).
    pub fn all() -> [Category; 4] {
        [Category::PrefFri, Category::PrefAgg, Category::PrefUnfri, Category::PrefNoAgg]
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::PrefFri => "Pref Fri",
            Category::PrefAgg => "Pref Agg",
            Category::PrefUnfri => "Pref Unfri",
            Category::PrefNoAgg => "Pref No Agg",
            Category::Trace => "Trace",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One core's occupant in a mix: a synthetic benchmark spec or a recorded
/// trace to replay.
#[derive(Clone)]
pub enum Slot {
    /// A synthetic generator from the roster.
    Bench(&'static Benchmark),
    /// A recorded trace replayed in a loop, rebased into the core's
    /// address window.
    Trace {
        /// Label used in journals and alone-IPC caching (typically the
        /// trace file stem).
        name: String,
        /// The shared recording.
        trace: Arc<Trace>,
    },
}

impl Slot {
    /// The slot's report/journal label.
    pub fn name(&self) -> &str {
        match self {
            Slot::Bench(b) => b.name,
            Slot::Trace { name, .. } => name,
        }
    }

    /// The underlying synthetic benchmark, when there is one.
    pub fn bench(&self) -> Option<&'static Benchmark> {
        match self {
            Slot::Bench(b) => Some(b),
            Slot::Trace { .. } => None,
        }
    }

    /// Builds the runnable workload for core placement `(base, seed)`.
    /// Trace slots ignore `llc_bytes` and `seed` (replay is exact) and
    /// rebase addresses into the 64 GiB window at `base`.
    pub fn instantiate(&self, llc_bytes: u64, base: u64, seed: u64) -> Box<dyn Workload + Send> {
        match self {
            Slot::Bench(b) => Box::new(b.instantiate(llc_bytes, base, seed)),
            Slot::Trace { name, trace } => {
                let mask = (1u64 << WINDOW_SHIFT) - 1;
                Box::new(TraceWorkload::new(name.clone(), trace.clone()).with_window(base, mask))
            }
        }
    }
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Bench(b) => write!(f, "Bench({})", b.name),
            Slot::Trace { name, trace } => write!(f, "Trace({name}, {} ops)", trace.len()),
        }
    }
}

/// One multiprogrammed workload (8 synthetic benchmarks, or one slot per
/// trace file for trace-driven mixes).
#[derive(Debug, Clone)]
pub struct Mix {
    /// e.g. `"PrefAgg-03"`.
    pub name: String,
    /// The category it was built for.
    pub category: Category,
    /// One entry per core, in placement order.
    pub slots: Vec<Slot>,
    /// Seed used for per-instance perturbation (unused by trace slots).
    pub seed: u64,
}

impl Mix {
    /// Number of cores this mix occupies.
    pub fn num_cores(&self) -> usize {
        self.slots.len()
    }

    /// The synthetic benchmarks in placement order (trace slots omitted)
    /// — the classification tests' view of the mix.
    pub fn benchmarks(&self) -> Vec<&'static Benchmark> {
        self.slots.iter().filter_map(|s| s.bench()).collect()
    }

    /// Replicates the slots round-robin onto a larger machine: core `i`
    /// of the tiled mix runs slot `i % self.num_cores()`. Per-core address
    /// windows and perturbation seeds still come from the *tiled* index,
    /// so the copies occupy disjoint memory and decorrelate. A no-op
    /// (same name) when the mix already spans `total_cores`.
    ///
    /// # Panics
    /// If `total_cores` is smaller than the mix.
    pub fn tiled(&self, total_cores: usize) -> Mix {
        assert!(
            total_cores >= self.num_cores(),
            "cannot tile a {}-core mix down to {total_cores} cores",
            self.num_cores()
        );
        if total_cores == self.num_cores() {
            return self.clone();
        }
        Mix {
            name: format!("{}@{}c", self.name, total_cores),
            category: self.category,
            slots: (0..total_cores).map(|i| self.slots[i % self.slots.len()].clone()).collect(),
            seed: self.seed,
        }
    }

    /// Builds the runnable workloads, one per core, each in a disjoint
    /// 64 GiB address window.
    pub fn instantiate(&self, llc_bytes: u64) -> Vec<Box<dyn Workload + Send>> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let base = (i as u64 + 1) << WINDOW_SHIFT;
                s.instantiate(llc_bytes, base, self.seed ^ (i as u64).wrapping_mul(0x9E37))
            })
            .collect()
    }
}

/// Draws `k` entries from `pool` without immediate repetition: the pool is
/// shuffled and consumed in order, reshuffling when exhausted, so every
/// class member appears before any repeats.
fn draw(pool: &[&'static Benchmark], k: usize, rng: &mut SplitMix64) -> Vec<&'static Benchmark> {
    assert!(!pool.is_empty());
    let mut out = Vec::with_capacity(k);
    let mut bag: Vec<&'static Benchmark> = Vec::new();
    while out.len() < k {
        if bag.is_empty() {
            bag = pool.to_vec();
            // Fisher–Yates.
            for i in (1..bag.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                bag.swap(i, j);
            }
        }
        out.push(bag.pop().expect("refilled above"));
    }
    out
}

/// Builds one mix of the given category.
///
/// # Panics
/// If `category` is [`Category::Trace`]; trace mixes come from
/// [`crate::tracemix::TraceSet::build_mixes`], not the synthetic roster.
pub fn build_mix(category: Category, index: usize, rng: &mut SplitMix64) -> Mix {
    let friendly = spec::friendly();
    let unfriendly = spec::unfriendly();
    let non_agg = spec::non_aggressive();
    let sensitive = spec::llc_sensitive();
    let insensitive_non_agg: Vec<&'static Benchmark> =
        non_agg.iter().copied().filter(|b| !b.class.llc_sensitive).collect();

    // Non-aggressive slots always include ≥2 LLC-sensitive benchmarks.
    let pick_non_agg = |n: usize, rng: &mut SplitMix64| -> Vec<&'static Benchmark> {
        let mut v = draw(&sensitive, 2, rng);
        v.extend(draw(&insensitive_non_agg, n - 2, rng));
        v
    };

    let mut benchmarks = match category {
        Category::PrefFri => {
            let mut v = draw(&friendly, 4, rng);
            v.extend(pick_non_agg(4, rng));
            v
        }
        Category::PrefAgg => {
            let mut v = draw(&friendly, 2, rng);
            v.extend(draw(&unfriendly, 2, rng));
            v.extend(pick_non_agg(4, rng));
            v
        }
        Category::PrefUnfri => {
            let mut v = draw(&unfriendly, 4, rng);
            v.extend(pick_non_agg(4, rng));
            v
        }
        Category::PrefNoAgg => pick_non_agg(8, rng),
        Category::Trace => panic!("trace mixes are built from trace files, not the roster"),
    };

    // Shuffle core placement.
    for i in (1..benchmarks.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        benchmarks.swap(i, j);
    }

    let label = match category {
        Category::PrefFri => "PrefFri",
        Category::PrefAgg => "PrefAgg",
        Category::PrefUnfri => "PrefUnfri",
        Category::PrefNoAgg => "PrefNoAgg",
        Category::Trace => unreachable!("rejected above"),
    };
    Mix {
        name: format!("{label}-{index:02}"),
        category,
        slots: benchmarks.into_iter().map(Slot::Bench).collect(),
        seed: rng.next_u64(),
    }
}

/// Builds the evaluation's full workload set: `per_category` mixes for each
/// of the four categories, in the paper's plotting order
/// (Pref Fri, Pref Agg, Pref Unfri, Pref No Agg).
pub fn build_mixes(seed: u64, per_category: usize) -> Vec<Mix> {
    let mut rng = SplitMix64::new(seed);
    let mut mixes = Vec::with_capacity(4 * per_category);
    for cat in Category::all() {
        for i in 0..per_category {
            mixes.push(build_mix(cat, i, &mut rng));
        }
    }
    mixes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_class(m: &Mix, f: impl Fn(&Benchmark) -> bool) -> usize {
        m.benchmarks().iter().filter(|b| f(b)).count()
    }

    #[test]
    fn category_composition_rules() {
        let mixes = build_mixes(1, 10);
        assert_eq!(mixes.len(), 40);
        for m in &mixes {
            assert_eq!(m.num_cores(), 8, "{}", m.name);
            let fri = count_class(m, |b| b.class.prefetch_friendly);
            let unf = count_class(m, |b| b.class.prefetch_aggressive && !b.class.prefetch_friendly);
            let non = count_class(m, |b| !b.class.prefetch_aggressive);
            let sens = count_class(m, |b| b.class.llc_sensitive);
            match m.category {
                Category::PrefFri => {
                    assert_eq!((fri, unf, non), (4, 0, 4), "{}", m.name);
                }
                Category::PrefAgg => {
                    assert_eq!((fri, unf, non), (2, 2, 4), "{}", m.name);
                }
                Category::PrefUnfri => {
                    assert_eq!((fri, unf, non), (0, 4, 4), "{}", m.name);
                }
                Category::PrefNoAgg => {
                    assert_eq!((fri, unf, non), (0, 0, 8), "{}", m.name);
                }
                Category::Trace => unreachable!("build_mixes never yields trace mixes"),
            }
            assert!(sens >= 2, "{}: needs ≥2 LLC-sensitive, got {sens}", m.name);
        }
    }

    #[test]
    fn ordering_matches_paper_plots() {
        let mixes = build_mixes(7, 10);
        let cats: Vec<Category> = mixes.iter().map(|m| m.category).collect();
        for (i, c) in cats.iter().enumerate() {
            assert_eq!(*c, Category::all()[i / 10]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_mixes(99, 2);
        let b = build_mixes(99, 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            let xn: Vec<&str> = x.slots.iter().map(|s| s.name()).collect();
            let yn: Vec<&str> = y.slots.iter().map(|s| s.name()).collect();
            assert_eq!(xn, yn);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_mixes(1, 10);
        let b = build_mixes(2, 10);
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| {
                x.slots.iter().map(|s| s.name()).collect::<Vec<_>>()
                    == y.slots.iter().map(|s| s.name()).collect::<Vec<_>>()
            })
            .count();
        assert!(same < a.len(), "seeds must shuffle mixes");
    }

    #[test]
    fn instantiate_places_cores_in_disjoint_windows() {
        let m = &build_mixes(5, 1)[0];
        let ws = m.instantiate(2560 << 10);
        assert_eq!(ws.len(), 8);
        let names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        for (i, s) in m.slots.iter().enumerate() {
            assert_eq!(names[i], s.name());
        }
    }

    #[test]
    fn trace_slots_replay_inside_their_window() {
        use cmm_trace::{Op, Trace};
        let mut t = Trace::new();
        for i in 0..16u64 {
            t.push(Op::Load { addr: i * 64, pc: 0x400 });
        }
        let slot = Slot::Trace { name: "t0".into(), trace: Arc::new(t) };
        assert_eq!(slot.name(), "t0");
        assert!(slot.bench().is_none());
        let base = 2u64 << WINDOW_SHIFT;
        let mut w = slot.instantiate(2560 << 10, base, 99);
        for _ in 0..16 {
            match w.next() {
                Op::Load { addr, .. } => {
                    assert_eq!(addr >> WINDOW_SHIFT, 2, "{addr:#x} outside window");
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn draw_avoids_repeats_until_pool_exhausted() {
        let pool = spec::friendly();
        let mut rng = SplitMix64::new(3);
        let picks = draw(&pool, pool.len(), &mut rng);
        let mut names: Vec<&str> = picks.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), pool.len(), "first |pool| draws must be distinct");
    }
}
