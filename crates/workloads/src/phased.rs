//! Phase-alternating workloads.
//!
//! Real programs move through phases — the paper's footnote to Sec. IV-B
//! notes that even "Pref No Agg" mixes can have phases where the `Agg` set
//! is non-empty, which is why CMM re-detects every execution epoch instead
//! of classifying once. [`Phased`] composes two [`Synthetic`] behaviours
//! with a switch period so controller adaptivity can be exercised and
//! tested.

use crate::pattern::{Synthetic, SyntheticConfig};
use cmm_sim::workload::{Op, Workload};

/// A workload alternating between two synthetic behaviours.
pub struct Phased {
    name: String,
    a: Synthetic,
    b: Synthetic,
    /// Memory accesses spent in phase A before switching.
    period_a: u64,
    /// Memory accesses spent in phase B before switching.
    period_b: u64,
    in_a: bool,
    left: u64,
    mlp: u32,
}

impl Phased {
    /// Builds a phased workload. Periods are counted in *operations*
    /// (compute + memory), so a phase lasts roughly `period` ops.
    pub fn new(
        name: impl Into<String>,
        a: SyntheticConfig,
        b: SyntheticConfig,
        period_a: u64,
        period_b: u64,
    ) -> Self {
        assert!(period_a > 0 && period_b > 0, "phases must be non-empty");
        let mlp = a.mlp.max(b.mlp);
        Phased {
            name: name.into(),
            a: Synthetic::new(a),
            b: Synthetic::new(b),
            period_a,
            period_b,
            in_a: true,
            left: period_a,
            mlp,
        }
    }

    /// True while phase A is active.
    pub fn in_phase_a(&self) -> bool {
        self.in_a
    }
}

impl Workload for Phased {
    fn next(&mut self) -> Op {
        if self.left == 0 {
            self.in_a = !self.in_a;
            self.left = if self.in_a { self.period_a } else { self.period_b };
        }
        self.left -= 1;
        if self.in_a {
            self.a.next()
        } else {
            self.b.next()
        }
    }

    fn mlp(&self) -> u32 {
        self.mlp
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
        self.in_a = true;
        self.left = self.period_a;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A ready-made phased benchmark: a prefetch-friendly streaming phase
/// alternating with a cache-resident compute phase — the "403.gcc"-style
/// behaviour that makes one epoch's `Agg` set differ from the next's.
pub fn stream_compute_phases(llc_bytes: u64, base: u64, seed: u64, period: u64) -> Phased {
    use crate::pattern::AccessPattern;
    let stream = SyntheticConfig {
        name: "phase-stream".into(),
        pattern: AccessPattern::Stream { stride: 8 },
        working_set: llc_bytes * 4,
        compute_per_access: 0,
        store_period: 0,
        mlp: 6,
        base,
        seed,
    };
    let compute = SyntheticConfig {
        name: "phase-compute".into(),
        pattern: AccessPattern::Stream { stride: 8 },
        working_set: 16 << 10,
        compute_per_access: 8,
        store_period: 0,
        mlp: 2,
        base: base + (1 << 32),
        seed,
    };
    Phased::new("gcc_phases", stream, compute, period, period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessPattern;

    fn cfg(stride: u64, base: u64) -> SyntheticConfig {
        SyntheticConfig {
            name: "p".into(),
            pattern: AccessPattern::Stream { stride },
            working_set: 1 << 16,
            compute_per_access: 0,
            store_period: 0,
            mlp: 4,
            base,
            seed: 1,
        }
    }

    fn addr_of(op: Op) -> Option<u64> {
        match op {
            Op::Load { addr, .. } | Op::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }

    #[test]
    fn phases_alternate_at_the_period() {
        let mut w = Phased::new("t", cfg(64, 0), cfg(64, 1 << 30), 10, 5);
        let mut regions = Vec::new();
        for _ in 0..30 {
            if let Some(a) = addr_of(w.next()) {
                regions.push(a >= (1 << 30));
            }
        }
        // First 10 ops from region A, next 5 from region B, then A again.
        assert!(!regions[0] && !regions[9]);
        assert!(regions[10] && regions[14]);
        assert!(!regions[15]);
    }

    #[test]
    fn asymmetric_periods_respected() {
        let mut w = Phased::new("t", cfg(64, 0), cfg(64, 1 << 30), 3, 7);
        let mut b_count = 0;
        for _ in 0..100 {
            if let Some(a) = addr_of(w.next()) {
                if a >= 1 << 30 {
                    b_count += 1;
                }
            }
        }
        // 7 of every 10 ops are phase B.
        assert!((60..=80).contains(&b_count), "{b_count}");
    }

    #[test]
    fn reset_restarts_in_phase_a() {
        let mut w = Phased::new("t", cfg(64, 0), cfg(64, 1 << 30), 4, 4);
        for _ in 0..6 {
            w.next();
        }
        assert!(!w.in_phase_a());
        w.reset();
        assert!(w.in_phase_a());
        assert_eq!(addr_of(w.next()), Some(0));
    }

    #[test]
    fn mlp_is_max_of_phases() {
        let mut a = cfg(64, 0);
        a.mlp = 2;
        let mut b = cfg(64, 1 << 30);
        b.mlp = 6;
        assert_eq!(Phased::new("t", a, b, 5, 5).mlp(), 6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_period_rejected() {
        Phased::new("t", cfg(64, 0), cfg(64, 1 << 30), 0, 5);
    }

    #[test]
    fn ready_made_gcc_phases_streams_then_computes() {
        let mut w = stream_compute_phases(2560 << 10, 1 << 36, 3, 1000);
        assert_eq!(w.name(), "gcc_phases");
        let first = addr_of(w.next()).unwrap();
        assert!(first >= 1 << 36);
    }
}
