//! Tiny deterministic PRNG for workload generation.
//!
//! Workload streams must be bit-for-bit reproducible across the baseline
//! run and every mechanism run, so we use a self-contained SplitMix64
//! instead of an external RNG whose stream might change across versions.

/// SplitMix64 (Steele, Lea & Flood 2014): fast, full 64-bit period from any
/// seed, passes BigCrush when used as a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the bounds used here (≤ 2^26 lines).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(37) < 37);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
