//! Property tests over the synthetic workload generators: address-range
//! containment, determinism, and class-structural invariants for every
//! roster benchmark under arbitrary seeds.

use cmm_sim::workload::{Op, Workload};
use cmm_workloads::pattern::{AccessPattern, Synthetic, SyntheticConfig};
use cmm_workloads::{build_mixes, spec};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        (1u64..512).prop_map(|stride| AccessPattern::Stream { stride }),
        ((1u32..5), (1u64..256))
            .prop_map(|(streams, stride)| AccessPattern::MultiStream { streams, stride }),
        Just(AccessPattern::PointerChase),
        ((2u32..6), (0u32..8))
            .prop_map(|(burst, hot_period)| AccessPattern::BurstRandom { burst, hot_period }),
        Just(AccessPattern::Random),
    ]
}

fn arb_config() -> impl Strategy<Value = SyntheticConfig> {
    (arb_pattern(), 12u32..22, 0u32..8, 0u32..6, 1u32..8, any::<u64>()).prop_map(
        |(pattern, ws_log2, compute, store_period, mlp, seed)| SyntheticConfig {
            name: "prop".into(),
            pattern,
            working_set: 1 << ws_log2,
            compute_per_access: compute,
            store_period,
            mlp,
            base: 1 << 36,
            seed,
        },
    )
}

proptest! {
    /// Every generated address stays inside the benchmark's window.
    #[test]
    fn addresses_stay_in_window(cfg in arb_config()) {
        let span = (cfg.working_set / 64).next_power_of_two().max(2) * 64;
        let base = cfg.base;
        let mut w = Synthetic::new(cfg);
        let mut seen_mem = 0;
        for _ in 0..2000 {
            match w.next() {
                Op::Load { addr, .. } | Op::Store { addr, .. } => {
                    prop_assert!(addr >= base, "{addr:#x} below base");
                    prop_assert!(addr < base + span, "{addr:#x} beyond window");
                    seen_mem += 1;
                }
                Op::Compute { cycles } => prop_assert!(cycles >= 1),
            }
        }
        prop_assert!(seen_mem > 0);
    }

    /// Two instances from the same config produce identical streams, and
    /// reset returns to the start.
    #[test]
    fn deterministic_and_resettable(cfg in arb_config()) {
        let mut a = Synthetic::new(cfg.clone());
        let mut b = Synthetic::new(cfg);
        let s1: Vec<Op> = (0..200).map(|_| a.next()).collect();
        let s2: Vec<Op> = (0..200).map(|_| b.next()).collect();
        prop_assert_eq!(&s1, &s2);
        a.reset();
        let s3: Vec<Op> = (0..200).map(|_| a.next()).collect();
        prop_assert_eq!(&s1, &s3);
    }

    /// Store periods produce exactly the configured store fraction.
    #[test]
    fn store_period_respected(mut cfg in arb_config(), period in 2u32..6) {
        cfg.store_period = period;
        let mut w = Synthetic::new(cfg);
        let mut loads = 0u32;
        let mut stores = 0u32;
        while loads + stores < 600 {
            match w.next() {
                Op::Load { .. } => loads += 1,
                Op::Store { .. } => stores += 1,
                _ => {}
            }
        }
        let expect = 600 / period;
        prop_assert!(stores.abs_diff(expect) <= 2, "period {period}: {stores} stores");
    }

    /// Mix construction invariants hold for any seed.
    #[test]
    fn mixes_valid_for_any_seed(seed in any::<u64>()) {
        for mix in build_mixes(seed, 2) {
            prop_assert_eq!(mix.num_cores(), 8);
            let sensitive = mix.benchmarks().iter().filter(|b| b.class.llc_sensitive).count();
            prop_assert!(sensitive >= 2, "{}: {sensitive}", mix.name);
            // Instantiation must not panic and must preserve names.
            let ws = mix.instantiate(2560 << 10);
            for (w, s) in ws.iter().zip(&mix.slots) {
                prop_assert_eq!(w.name(), s.name());
            }
        }
    }
}

#[test]
fn every_roster_benchmark_generates_sane_streams() {
    for b in spec::roster() {
        let mut w = b.instantiate(2560 << 10, 1 << 36, 9);
        let mut mem = 0;
        for _ in 0..1000 {
            match w.next() {
                Op::Load { addr, .. } | Op::Store { addr, .. } => {
                    assert!(addr >= 1 << 36, "{}: address below base", b.name);
                    mem += 1;
                }
                Op::Compute { cycles } => assert!(cycles >= 1),
            }
        }
        assert!(mem > 100, "{}: too few memory ops", b.name);
        assert!(w.mlp() >= 1);
    }
}
