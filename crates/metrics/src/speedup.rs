//! Multiprogram speedup and fairness metrics (paper Sec. IV-C).

/// Harmonic speedup: `HS = N / Σ_i (IPC_alone_i / IPC_together_i)`.
///
/// Higher is better; `1/HS` is the average normalized turnaround time.
/// Cores with zero together-IPC make the metric 0 (infinite slowdown).
///
/// # Panics
/// If the slices differ in length or are empty.
pub fn harmonic_speedup(alone: &[f64], together: &[f64]) -> f64 {
    assert_eq!(alone.len(), together.len(), "need one alone IPC per core");
    assert!(!alone.is_empty());
    let mut denom = 0.0;
    for (&a, &t) in alone.iter().zip(together) {
        assert!(a > 0.0, "run-alone IPC must be positive");
        if t <= 0.0 {
            return 0.0;
        }
        denom += a / t;
    }
    alone.len() as f64 / denom
}

/// Average normalized turnaround time: the reciprocal of
/// [`harmonic_speedup`] (Eyerman & Eeckhout). Lower is better.
pub fn antt(alone: &[f64], together: &[f64]) -> f64 {
    let hs = harmonic_speedup(alone, together);
    if hs == 0.0 {
        f64::INFINITY
    } else {
        1.0 / hs
    }
}

/// Weighted speedup of a mechanism over a baseline:
/// `WS = Σ_i (IPC_x_i / IPC_baseline_i)`.
///
/// A WS of `N` (the core count) means no net change; the paper plots
/// WS *normalized* by N so 1.0 is parity — use
/// `weighted_speedup(..)/N` for that view.
pub fn weighted_speedup(mechanism: &[f64], baseline: &[f64]) -> f64 {
    assert_eq!(mechanism.len(), baseline.len());
    assert!(!mechanism.is_empty());
    mechanism
        .iter()
        .zip(baseline)
        .map(|(&x, &b)| {
            assert!(b > 0.0, "baseline IPC must be positive");
            x / b
        })
        .sum()
}

/// Per-application normalized IPC (mechanism / baseline), the series behind
/// the worst-case plots.
pub fn normalized_ipcs(mechanism: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(mechanism.len(), baseline.len());
    mechanism
        .iter()
        .zip(baseline)
        .map(|(&x, &b)| {
            assert!(b > 0.0, "baseline IPC must be positive");
            x / b
        })
        .collect()
}

/// The lowest per-application normalized IPC in a workload (Figs. 8/10/12):
/// how badly the most-hurt application fares under the mechanism.
pub fn worst_case_speedup(mechanism: &[f64], baseline: &[f64]) -> f64 {
    normalized_ipcs(mechanism, baseline).into_iter().fold(f64::INFINITY, f64::min)
}

/// Harmonic mean of raw per-core IPCs — the paper's sampling-interval
/// ranking proxy (`hm_ipc`, Sec. III-B1). Zero if any IPC is zero.
pub fn hm_ipc(ipcs: &[f64]) -> f64 {
    crate::stats::harmonic_mean(ipcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hs_is_one_when_nothing_slows_down() {
        let a = [1.0, 2.0, 0.5];
        assert!((harmonic_speedup(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hs_penalises_one_badly_hurt_app() {
        // Two apps: one at full speed, one at 10%.
        let hs = harmonic_speedup(&[1.0, 1.0], &[1.0, 0.1]);
        // Arithmetic mean of speedups would be 0.55; HS is much lower.
        assert!((hs - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn hs_zero_on_starved_core() {
        assert_eq!(harmonic_speedup(&[1.0, 1.0], &[1.0, 0.0]), 0.0);
        assert_eq!(antt(&[1.0, 1.0], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn antt_is_reciprocal_of_hs() {
        let alone = [1.2, 0.8];
        let together = [0.6, 0.6];
        let hs = harmonic_speedup(&alone, &together);
        assert!((antt(&alone, &together) * hs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ws_parity_equals_core_count() {
        let b = [0.7, 1.4, 2.1];
        assert!((weighted_speedup(&b, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ws_counts_gains_linearly() {
        let ws = weighted_speedup(&[2.0, 1.0], &[1.0, 1.0]);
        assert!((ws - 3.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_finds_minimum() {
        let w = worst_case_speedup(&[1.2, 0.4, 1.0], &[1.0, 1.0, 1.0]);
        assert!((w - 0.4).abs() < 1e-12);
    }

    #[test]
    fn normalized_ipcs_elementwise() {
        let v = normalized_ipcs(&[2.0, 0.5], &[1.0, 1.0]);
        assert_eq!(v, vec![2.0, 0.5]);
    }

    #[test]
    fn hm_ipc_matches_manual_value() {
        let v = hm_ipc(&[1.0, 0.5]);
        assert!((v - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one alone IPC per core")]
    fn mismatched_lengths_panic() {
        harmonic_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "baseline IPC must be positive")]
    fn zero_baseline_panics() {
        weighted_speedup(&[1.0], &[0.0]);
    }
}
