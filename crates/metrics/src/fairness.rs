//! Additional multiprogram fairness metrics from the literature the paper
//! surveys (Sec. IV-C cites Gabor et al., Luo et al., Vandierendonck &
//! Seznec, Eyerman & Eeckhout). HS/WS are the paper's reporting choice;
//! these give downstream users the standard alternatives on the same data.

/// System throughput (STP), a.k.a. weighted speedup against run-alone
/// IPCs: `Σ IPC_together_i / IPC_alone_i`. Equals the core count under
/// perfect isolation.
pub fn stp(alone: &[f64], together: &[f64]) -> f64 {
    assert_eq!(alone.len(), together.len());
    assert!(!alone.is_empty());
    alone
        .iter()
        .zip(together)
        .map(|(&a, &t)| {
            assert!(a > 0.0, "run-alone IPC must be positive");
            t / a
        })
        .sum()
}

/// Per-application slowdowns `IPC_alone_i / IPC_together_i` (≥ 1 under
/// pure interference).
pub fn slowdowns(alone: &[f64], together: &[f64]) -> Vec<f64> {
    assert_eq!(alone.len(), together.len());
    alone
        .iter()
        .zip(together)
        .map(|(&a, &t)| {
            assert!(a > 0.0 && t > 0.0, "IPCs must be positive");
            a / t
        })
        .collect()
}

/// Maximum slowdown — the metric minimised by fairness-oriented schedulers.
pub fn max_slowdown(alone: &[f64], together: &[f64]) -> f64 {
    slowdowns(alone, together).into_iter().fold(0.0, f64::max)
}

/// Fairness in the sense of Gabor et al. (min slowdown / max slowdown):
/// 1.0 when every application suffers equally, → 0 as one application is
/// singled out.
pub fn gabor_fairness(alone: &[f64], together: &[f64]) -> f64 {
    let s = slowdowns(alone, together);
    let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = s.iter().cloned().fold(0.0f64, f64::max);
    if max == 0.0 {
        0.0
    } else {
        min / max
    }
}

/// Jain's fairness index over the per-application speedups
/// (`(Σx)² / (n·Σx²)`): 1.0 when uniform, 1/n when one application gets
/// everything.
pub fn jain_index(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        0.0
    } else {
        (sum * sum) / (values.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stp_is_core_count_under_isolation() {
        let a = [1.0, 0.5, 2.0];
        assert!((stp(&a, &a) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn slowdowns_elementwise() {
        let s = slowdowns(&[1.0, 2.0], &[0.5, 1.0]);
        assert_eq!(s, vec![2.0, 2.0]);
    }

    #[test]
    fn max_slowdown_finds_worst_victim() {
        let m = max_slowdown(&[1.0, 1.0, 1.0], &[0.9, 0.2, 0.8]);
        assert!((m - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gabor_fairness_bounds() {
        // Uniform slowdown → 1.0.
        assert!((gabor_fairness(&[1.0, 2.0], &[0.5, 1.0]) - 1.0).abs() < 1e-12);
        // One app crushed → small.
        let f = gabor_fairness(&[1.0, 1.0], &[1.0, 0.1]);
        assert!((f - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jain_bounds() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let one_hog = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((one_hog - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = jain_index(&[0.2, 0.4, 0.6]);
        let b = jain_index(&[2.0, 4.0, 6.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ipc_rejected() {
        slowdowns(&[1.0], &[0.0]);
    }
}
