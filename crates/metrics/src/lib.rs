//! # cmm-metrics — multiprogram performance and fairness metrics
//!
//! Implements the system-level metrics of the paper's Sec. IV-C (following
//! Eyerman & Eeckhout, *System-Level Performance Metrics for Multiprogram
//! Workloads*, IEEE Micro 2008):
//!
//! * **Harmonic speedup (HS)** — `N / Σ (IPC_alone_i / IPC_together_i)`;
//!   its reciprocal is the average normalized turnaround time (ANTT).
//!   HS captures both performance *and* fairness.
//! * **Weighted speedup (WS)** — `Σ (IPC_x_i / IPC_baseline_i)`, the
//!   throughput metric the paper normalizes against the no-control
//!   baseline.
//! * **hm_ipc** — the harmonic mean of the raw per-core IPCs, the proxy
//!   the paper's back-end uses to rank sampling configurations when
//!   run-alone IPCs are unknown (Sec. III-B1).
//! * **worst-case speedup** — the minimum per-application normalized IPC,
//!   Figs. 8/10/12.
//!
//! Plus the 1-D [k-means](kmeans) used for group-level throttling and the
//! Dunn baseline, and small statistics helpers.

pub mod fairness;
pub mod kmeans;
pub mod speedup;
pub mod stats;

pub use fairness::{gabor_fairness, jain_index, max_slowdown, slowdowns, stp};
pub use kmeans::{kmeans_1d, KMeans1d};
pub use speedup::{
    antt, harmonic_speedup, hm_ipc, normalized_ipcs, weighted_speedup, worst_case_speedup,
};
pub use stats::{geomean, harmonic_mean, mean, median};
