//! Small statistics helpers shared by the harness and the controller.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
/// If any value is negative.
pub fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &x in v {
        assert!(x >= 0.0, "geomean of negative value");
        if x == 0.0 {
            return 0.0;
        }
        log_sum += x.ln();
    }
    (log_sum / v.len() as f64).exp()
}

/// Harmonic mean; 0 for an empty slice or if any value is ≤ 0.
pub fn harmonic_mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut denom = 0.0;
    for &x in v {
        if x <= 0.0 {
            return 0.0;
        }
        denom += 1.0 / x;
    }
    v.len() as f64 / denom
}

/// Median (average of the two middle values for even lengths);
/// 0 for an empty slice. The paper reports the median of three runs.
pub fn median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("median of NaN"));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[2.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn geomean_rejects_negative() {
        geomean(&[-1.0]);
    }

    #[test]
    fn harmonic_mean_basic() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 0.5]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn hm_never_exceeds_mean() {
        let v = [0.3, 1.7, 0.9, 2.4];
        assert!(harmonic_mean(&v) <= mean(&v));
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
