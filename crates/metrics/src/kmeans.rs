//! One-dimensional k-means clustering.
//!
//! The paper uses k-means (Hartigan & Wong, 1979) in two places:
//!
//! * the PT back-end clusters `Agg`-set cores by their L2 prefetch-miss
//!   traffic rate (M-3) into a handful of throttling groups, shrinking the
//!   `2^|Agg|` search space to `2^k` (Sec. III-B1);
//! * the Dunn baseline (Selfa et al.) clusters all cores by
//!   `STALLS_L2_PENDING` to assign nested cache partitions.
//!
//! Values are scalar, so we run Lloyd iterations with deterministic
//! quantile seeding — no RNG, so controller decisions are reproducible.

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans1d {
    /// `assignments[i]` is the cluster index of input `i` (in `0..k`).
    pub assignments: Vec<usize>,
    /// Cluster centroids, ascending.
    pub centroids: Vec<f64>,
}

impl KMeans1d {
    /// Indices of the inputs belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter_map(|(i, &a)| (a == c).then_some(i)).collect()
    }

    /// Number of clusters actually produced.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// Clusters `values` into at most `k` groups. The effective `k` is capped
/// at the number of *distinct* values, so centroids are always distinct and
/// non-empty. Centroids are returned ascending, and cluster indices are
/// ordered by centroid (cluster 0 = lowest values).
///
/// # Panics
/// If `values` is empty, `k == 0`, or any value is NaN.
pub fn kmeans_1d(values: &[f64], k: usize) -> KMeans1d {
    assert!(!values.is_empty(), "cannot cluster an empty set");
    assert!(k > 0, "need at least one cluster");
    assert!(values.iter().all(|v| !v.is_nan()), "NaN in k-means input");

    let mut distinct: Vec<f64> = values.to_vec();
    distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
    distinct.dedup();
    let k = k.min(distinct.len());

    // Quantile seeding over the distinct values: deterministic and spread.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let idx = (i * (distinct.len() - 1)) / k.max(1).saturating_sub(1).max(1);
            distinct[idx.min(distinct.len() - 1)]
        })
        .collect();
    if k > 1 {
        // Ensure the last seed is the max so the spread covers the range.
        centroids[k - 1] = *distinct.last().unwrap();
    }
    centroids.dedup();
    while centroids.len() < k {
        // Degenerate seeding (can happen with tiny ranges): pad with
        // remaining distinct values.
        let missing = distinct.iter().find(|v| !centroids.contains(v)).copied();
        match missing {
            Some(v) => centroids.push(v),
            None => break,
        }
    }
    centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let k = centroids.len();

    let mut assignments = vec![0usize; values.len()];
    for _iter in 0..64 {
        // Assignment step.
        let mut changed = false;
        for (i, &v) in values.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, &ctr) in centroids.iter().enumerate() {
                let d = (v - ctr).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &v) in values.iter().enumerate() {
            sums[assignments[i]] += v;
            counts[assignments[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        if !changed {
            break;
        }
    }

    // Renumber clusters by ascending centroid and drop empty ones.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| centroids[a].partial_cmp(&centroids[b]).unwrap());
    let mut used: Vec<usize> = assignments.clone();
    used.sort_unstable();
    used.dedup();
    let mut remap = vec![usize::MAX; k];
    let mut kept_centroids = Vec::new();
    for &old in &order {
        if used.contains(&old) {
            remap[old] = kept_centroids.len();
            kept_centroids.push(centroids[old]);
        }
    }
    for a in &mut assignments {
        *a = remap[*a];
    }

    KMeans1d { assignments, centroids: kept_centroids }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_groups() {
        let r = kmeans_1d(&[1.0, 1.1, 0.9, 10.0, 10.2, 9.8], 2);
        assert_eq!(r.k(), 2);
        assert_eq!(&r.assignments[..3], &[0, 0, 0]);
        assert_eq!(&r.assignments[3..], &[1, 1, 1]);
        assert!(r.centroids[0] < r.centroids[1]);
    }

    #[test]
    fn k_capped_by_distinct_values() {
        let r = kmeans_1d(&[5.0, 5.0, 5.0], 3);
        assert_eq!(r.k(), 1);
        assert_eq!(r.assignments, vec![0, 0, 0]);
        assert!((r.centroids[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let r = kmeans_1d(&[42.0], 3);
        assert_eq!(r.k(), 1);
        assert_eq!(r.assignments, vec![0]);
    }

    #[test]
    fn clusters_ordered_by_centroid() {
        let r = kmeans_1d(&[100.0, 1.0, 50.0, 2.0, 99.0, 51.0], 3);
        assert_eq!(r.k(), 3);
        // Input 1 (value 1.0) must be in the lowest cluster.
        assert_eq!(r.assignments[1], 0);
        // Input 0 (value 100.0) must be in the highest cluster.
        assert_eq!(r.assignments[0], r.k() - 1);
        for w in r.centroids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn members_inverts_assignments() {
        let r = kmeans_1d(&[1.0, 9.0, 1.2, 9.3], 2);
        assert_eq!(r.members(0), vec![0, 2]);
        assert_eq!(r.members(1), vec![1, 3]);
    }

    #[test]
    fn three_groups_converge() {
        let data = [0.1, 0.2, 0.15, 5.0, 5.1, 4.9, 20.0, 19.5, 20.5];
        let r = kmeans_1d(&data, 3);
        assert_eq!(r.k(), 3);
        assert!(r.assignments[..3].iter().all(|&a| a == 0));
        assert!(r.assignments[3..6].iter().all(|&a| a == 1));
        assert!(r.assignments[6..].iter().all(|&a| a == 2));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        kmeans_1d(&[], 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        kmeans_1d(&[1.0, f64::NAN], 2);
    }

    #[test]
    fn deterministic() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        assert_eq!(kmeans_1d(&data, 3), kmeans_1d(&data, 3));
    }
}
