//! A seeded epsilon-greedy contextual bandit over a discretized
//! state × action space — the online policy behind `Mechanism::RlCbp`.
//!
//! Determinism contract: the action sequence is a pure function of
//! `(seed, state/reward sequence)`. With `epsilon == 0` the bandit draws
//! no entropy at all and is purely greedy, which is what the
//! zero-exploration determinism tests pin.
//!
//! Greedy selection is **sticky**: the incumbent action (the one selected
//! last time from the same state) wins ties against equal-valued rivals,
//! so an optimistically seeded prior keeps steering the policy until some
//! explored action demonstrates strictly higher reward. Without
//! stickiness, a prior that decays toward 0 would hand control to
//! whichever action happens to sort first.

use crate::uniform01;

/// Bandit construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BanditConfig {
    /// Entropy seed for the exploration stream.
    pub seed: u64,
    /// Number of discretized states.
    pub states: usize,
    /// Number of actions per state.
    pub actions: usize,
    /// Initial exploration probability (0 disables exploration and the
    /// entropy stream entirely).
    pub epsilon: f64,
    /// Per-selection multiplicative epsilon decay (e.g. 0.85).
    pub epsilon_decay: f64,
    /// Q-value learning rate for [`Bandit::observe`].
    pub alpha: f64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            seed: 0,
            states: 1,
            actions: 2,
            epsilon: 0.2,
            epsilon_decay: 0.85,
            alpha: 0.5,
        }
    }
}

/// The bandit: a dense Q-table plus the seeded exploration stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Bandit {
    cfg: BanditConfig,
    /// Q-values, `states × actions`, row-major.
    q: Vec<f64>,
    /// Selection counts per (state, action).
    n: Vec<u64>,
    /// Incumbent action per state (sticky tie-break).
    incumbent: Vec<Option<usize>>,
    /// Exploration RNG state.
    rng: u64,
    /// Selections made so far (drives the epsilon decay).
    steps: u64,
    /// The (state, action) to credit on the next [`Bandit::observe`].
    last: Option<(usize, usize)>,
}

impl Bandit {
    /// A fresh bandit with an all-zero Q-table.
    pub fn new(cfg: BanditConfig) -> Self {
        assert!(cfg.states >= 1 && cfg.actions >= 1);
        assert!((0.0..=1.0).contains(&cfg.epsilon));
        let (s, a) = (cfg.states, cfg.actions);
        Bandit {
            rng: cfg.seed,
            q: vec![0.0; s * a],
            n: vec![0; s * a],
            incumbent: vec![None; s],
            steps: 0,
            last: None,
            cfg,
        }
    }

    /// Seeds an optimistic prior: sets `Q(state, action)` and makes the
    /// action the state's incumbent. Used to start the policy at a
    /// known-good configuration instead of uniform ignorance.
    pub fn seed_action(&mut self, state: usize, action: usize, q0: f64) {
        self.q[state * self.cfg.actions + action] = q0;
        self.incumbent[state] = Some(action);
    }

    /// Q-value accessor (tests and reporting).
    pub fn q(&self, state: usize, action: usize) -> f64 {
        self.q[state * self.cfg.actions + action]
    }

    /// Times `action` was selected from `state`.
    pub fn count(&self, state: usize, action: usize) -> u64 {
        self.n[state * self.cfg.actions + action]
    }

    /// The current exploration probability.
    pub fn epsilon_now(&self) -> f64 {
        self.cfg.epsilon * self.cfg.epsilon_decay.powf(self.steps as f64)
    }

    /// The greedy action for `state` with sticky tie-breaking: the
    /// incumbent wins unless a rival's Q is strictly higher.
    pub fn greedy(&self, state: usize) -> usize {
        let row = &self.q[state * self.cfg.actions..(state + 1) * self.cfg.actions];
        let mut best = self.incumbent[state].unwrap_or(0);
        for (a, &q) in row.iter().enumerate() {
            if q > row[best] {
                best = a;
            }
        }
        best
    }

    /// Selects an action for `state` (epsilon-greedy) and remembers the
    /// pair for the next [`Bandit::observe`]. With `epsilon == 0` this
    /// draws no entropy.
    pub fn select(&mut self, state: usize) -> usize {
        let eps = self.epsilon_now();
        let action = if eps > 0.0 && uniform01(&mut self.rng) < eps {
            (crate::splitmix64(&mut self.rng) % self.cfg.actions as u64) as usize
        } else {
            self.greedy(state)
        };
        self.steps += 1;
        self.n[state * self.cfg.actions + action] += 1;
        self.incumbent[state] = Some(action);
        self.last = Some((state, action));
        action
    }

    /// Credits `reward` to the most recently selected (state, action):
    /// `Q += alpha * (reward - Q)`. A no-op before the first selection.
    /// Does not clear the pair — an action left in force across several
    /// epochs (epoch stretching) absorbs each epoch's reward.
    pub fn observe(&mut self, reward: f64) {
        if let Some((s, a)) = self.last {
            let q = &mut self.q[s * self.cfg.actions + a];
            *q += self.cfg.alpha * (reward - *q);
        }
    }

    /// Greedy selection with learning switched off: no entropy is drawn,
    /// the epsilon schedule does not advance, and the next
    /// [`Bandit::observe`] is a no-op (the pending credit is cleared).
    /// For states where exploration cannot pay and the reward signal is
    /// uninformative — e.g. a quiet machine with nothing to throttle —
    /// so a short run is never spent probing arms it cannot evaluate.
    pub fn exploit(&mut self, state: usize) -> usize {
        let action = self.greedy(state);
        self.n[state * self.cfg.actions + action] += 1;
        self.incumbent[state] = Some(action);
        self.last = None;
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64, epsilon: f64) -> BanditConfig {
        BanditConfig { seed, states: 3, actions: 4, epsilon, ..BanditConfig::default() }
    }

    #[test]
    fn zero_epsilon_is_pure_greedy_and_deterministic() {
        let mut a = Bandit::new(cfg(1, 0.0));
        let mut b = Bandit::new(cfg(999, 0.0)); // seed must not matter
        a.seed_action(0, 2, 0.1);
        b.seed_action(0, 2, 0.1);
        for _ in 0..20 {
            assert_eq!(a.select(0), 2);
            assert_eq!(b.select(0), 2);
            a.observe(0.0);
            b.observe(0.0);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Bandit::new(cfg(7, 0.5));
        let mut b = Bandit::new(cfg(7, 0.5));
        for i in 0..50 {
            let s = i % 3;
            assert_eq!(a.select(s), b.select(s));
            a.observe(0.01);
            b.observe(0.01);
        }
    }

    #[test]
    fn incumbent_survives_reward_decay_until_beaten() {
        let mut b = Bandit::new(cfg(3, 0.0));
        b.seed_action(1, 3, 0.05);
        // Neutral rewards decay the prior toward 0 but never below the
        // rivals, so the incumbent keeps winning ties.
        for _ in 0..30 {
            assert_eq!(b.select(1), 3);
            b.observe(0.0);
        }
        // A rival demonstrating strictly higher value takes over.
        b.seed_action(1, 0, 0.5);
        b.incumbent[1] = Some(3); // seed_action moved incumbency; restore
        assert_eq!(b.select(1), 0);
    }

    #[test]
    fn rewards_move_q_toward_observations() {
        let mut b = Bandit::new(cfg(5, 0.0));
        b.select(0);
        b.observe(1.0);
        assert!(b.q(0, 0) > 0.0);
        let q1 = b.q(0, 0);
        b.observe(1.0);
        assert!(b.q(0, 0) > q1, "repeated reward keeps approaching 1.0");
        assert_eq!(b.count(0, 0), 1);
    }

    #[test]
    fn exploit_draws_no_entropy_and_discards_the_next_reward() {
        let mut a = Bandit::new(cfg(11, 1.0));
        let mut b = Bandit::new(cfg(999, 1.0));
        a.seed_action(2, 1, 0.1);
        b.seed_action(2, 1, 0.1);
        // Even at epsilon 1.0 and different seeds, exploit is the greedy
        // arm, bit-identically.
        for _ in 0..10 {
            assert_eq!(a.exploit(2), 1);
            assert_eq!(b.exploit(2), 1);
            // A quiet epoch's reward must not perturb the Q-table.
            a.observe(-5.0);
            b.observe(-5.0);
        }
        assert_eq!(a.q(2, 1), 0.1);
        // The RNG stream is untouched: the next real selections agree
        // with a bandit that never exploited.
        let mut fresh = Bandit::new(cfg(11, 1.0));
        fresh.seed_action(2, 1, 0.1);
        assert_eq!(a.select(0), fresh.select(0));
        assert_eq!(a.select(1), fresh.select(1));
    }

    #[test]
    fn epsilon_decays_per_selection() {
        let mut b = Bandit::new(cfg(5, 0.4));
        let e0 = b.epsilon_now();
        b.select(0);
        assert!(b.epsilon_now() < e0);
    }

    #[test]
    fn exploration_eventually_tries_non_greedy_actions() {
        let mut b = Bandit::new(BanditConfig {
            seed: 11,
            states: 1,
            actions: 4,
            epsilon: 1.0,
            epsilon_decay: 1.0,
            ..BanditConfig::default()
        });
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[b.select(0)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
