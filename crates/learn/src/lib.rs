//! Learned controllers for the CMM stack — the model/bandit substrate
//! behind `Mechanism::MlSel` and `Mechanism::RlCbp`.
//!
//! Like `cmm-trace`, this crate is dependency-free and fully seeded: every
//! model is a pure function of its training set, every bandit a pure
//! function of `(seed, observation sequence)`, which is what lets the
//! learned mechanisms keep the workspace's byte-identity contract
//! (journals identical at any `--jobs`, across `--resume`).
//!
//! Three pieces:
//!
//! * [`features`] — fixed-length per-core feature vectors derived from the
//!   PMU counter surface (IPC, per-level miss rates, MLP, prefetch
//!   accuracy/coverage, memory-bandwidth pressure — the stand-in for MBA
//!   deferral counters the PMU does not expose directly).
//! * [`model`] — a hand-rolled multinomial-logistic phase classifier with
//!   the versioned, checksummed `cmm-model/1` text serialization.
//! * [`bandit`] — a seeded epsilon-greedy contextual bandit over a
//!   discretized state × action space, with sticky greedy tie-breaking so
//!   an incumbent action is only dethroned by demonstrated reward.

pub mod bandit;
pub mod features;
pub mod model;

pub use bandit::{Bandit, BanditConfig};
pub use features::{features, RawCounters, FEATURE_NAMES, N_FEATURES};
pub use model::{Model, ModelError, Prediction, MODEL_MAGIC};

/// The splitmix64 step — the workspace's standard seeded entropy stream
/// (same generator the fault-injection layer uses). Advances `state` and
/// returns the next 64-bit draw.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the splitmix64 stream.
pub fn uniform01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Index of the bucket `v` falls into given ascending `edges`:
/// `v < edges[0]` → 0, `edges[0] <= v < edges[1]` → 1, …, past the last
/// edge → `edges.len()`.
pub fn bucket(v: f64, edges: &[f64]) -> usize {
    edges.iter().take_while(|&&e| v >= e).count()
}

/// FNV-1a digest in the workspace's `fnv1a:{:016x}` rendering — the same
/// digest the journal uses for configurations, reused here to checksum
/// serialized models.
pub fn fnv1a(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a:{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let mut a = 7u64;
        let mut b = 7u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        let mut c = 8u64;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }

    #[test]
    fn uniform01_stays_in_range() {
        let mut s = 42u64;
        for _ in 0..1000 {
            let u = uniform01(&mut s);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bucket_edges_are_half_open() {
        let edges = [1.0, 2.0];
        assert_eq!(bucket(0.5, &edges), 0);
        assert_eq!(bucket(1.0, &edges), 1);
        assert_eq!(bucket(1.9, &edges), 1);
        assert_eq!(bucket(2.0, &edges), 2);
        assert_eq!(bucket(9.0, &edges), 2);
    }

    #[test]
    fn fnv1a_matches_journal_rendering() {
        assert_eq!(fnv1a(b""), "fnv1a:cbf29ce484222325");
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
