//! The `cmm-model/1` phase classifier: hand-rolled multinomial logistic
//! regression with a versioned, checksummed text serialization.
//!
//! Training is plain batch gradient descent from a zero initialization —
//! no randomness anywhere, so the fitted weights are a pure function of
//! the training set and the committed model fixture is reproducible by
//! re-running `repro learn train`.
//!
//! The on-disk format is line-oriented text (the build has no serde):
//!
//! ```text
//! cmm-model/1
//! kind multinomial-logistic
//! features 8
//! classes 3
//! labels 0 3 15
//! w 0 <features+1 floats, bias last>
//! w 1 …
//! w 2 …
//! checksum fnv1a:0123456789abcdef
//! ```
//!
//! Floats render in Rust's shortest round-trip form, so
//! `from_text(to_text(m)) == m` bit for bit. The checksum is the
//! workspace's FNV-1a digest over every byte before the checksum line;
//! a reader rejects wrong magic, unsupported versions, and checksum
//! mismatches with distinct errors (the CLI maps all three to exit 2).

use crate::features::N_FEATURES;
use crate::fnv1a;

/// First line of every serialized model.
pub const MODEL_MAGIC: &str = "cmm-model/1";

/// Why a serialized model was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The first line is not a `cmm-model/…` header at all.
    BadMagic,
    /// A `cmm-model/…` header with a version this reader does not speak.
    BadVersion(String),
    /// The trailing checksum does not match the content.
    BadChecksum { want: String, got: String },
    /// Structurally invalid content (missing or malformed lines).
    Parse(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadMagic => write!(f, "not a cmm-model file (bad magic)"),
            ModelError::BadVersion(v) => {
                write!(f, "unsupported model version '{v}' (want {MODEL_MAGIC})")
            }
            ModelError::BadChecksum { want, got } => {
                write!(f, "model checksum mismatch: file says {got}, content is {want}")
            }
            ModelError::Parse(m) => write!(f, "malformed model: {m}"),
        }
    }
}

/// One classification: the winning class plus its softmax probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Index into [`Model::labels`].
    pub class: usize,
    /// Softmax probability of the winning class, in `(1/classes, 1]`.
    pub confidence: f64,
}

/// A trained multinomial-logistic phase classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Per-class payload labels (for the prefetch classifier: the per-core
    /// MSR 0x1A4 image the class stands for).
    pub labels: Vec<u64>,
    /// One weight row per class: `N_FEATURES` coefficients plus a trailing
    /// bias term.
    pub weights: Vec<Vec<f64>>,
}

impl Model {
    /// Class scores before the softmax.
    fn logits(&self, x: &[f64; N_FEATURES]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| w[N_FEATURES] + w[..N_FEATURES].iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
            .collect()
    }

    /// Softmax class probabilities (max-shifted for stability).
    pub fn probabilities(&self, x: &[f64; N_FEATURES]) -> Vec<f64> {
        let logits = self.logits(x);
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Classifies one feature vector. Ties break toward the lowest class
    /// index, so prediction is deterministic.
    pub fn predict(&self, x: &[f64; N_FEATURES]) -> Prediction {
        let probs = self.probabilities(x);
        let mut class = 0;
        for (i, p) in probs.iter().enumerate() {
            if *p > probs[class] {
                class = i;
            }
        }
        Prediction { class, confidence: probs[class] }
    }

    /// Fits a classifier on `(features, class-index)` samples by batch
    /// gradient descent from zero weights: `iters` full-batch steps at
    /// learning rate `lr` with L2 weight decay `decay`. Fully
    /// deterministic.
    pub fn train(
        samples: &[([f64; N_FEATURES], usize)],
        labels: Vec<u64>,
        iters: usize,
        lr: f64,
        decay: f64,
    ) -> Model {
        let k = labels.len();
        assert!(k >= 2, "need at least two classes");
        assert!(samples.iter().all(|(_, c)| *c < k), "class index out of range");
        let mut model = Model { labels, weights: vec![vec![0.0; N_FEATURES + 1]; k] };
        if samples.is_empty() {
            return model;
        }
        let inv_n = 1.0 / samples.len() as f64;
        for _ in 0..iters {
            let mut grad = vec![vec![0.0; N_FEATURES + 1]; k];
            for (x, y) in samples {
                let probs = model.probabilities(x);
                for (c, g) in grad.iter_mut().enumerate() {
                    let err = probs[c] - if c == *y { 1.0 } else { 0.0 };
                    for (gi, xi) in g[..N_FEATURES].iter_mut().zip(x) {
                        *gi += err * xi;
                    }
                    g[N_FEATURES] += err;
                }
            }
            for (w, g) in model.weights.iter_mut().zip(&grad) {
                for (wi, gi) in w.iter_mut().zip(g) {
                    *wi -= lr * (gi * inv_n + decay * *wi);
                }
            }
        }
        model
    }

    /// Fraction of `samples` the model classifies correctly.
    pub fn accuracy(&self, samples: &[([f64; N_FEATURES], usize)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let hits = samples.iter().filter(|(x, y)| self.predict(x).class == *y).count();
        hits as f64 / samples.len() as f64
    }

    /// Serializes in the `cmm-model/1` format (trailing newline included).
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(MODEL_MAGIC);
        body.push('\n');
        body.push_str("kind multinomial-logistic\n");
        body.push_str(&format!("features {N_FEATURES}\n"));
        body.push_str(&format!("classes {}\n", self.labels.len()));
        body.push_str("labels");
        for l in &self.labels {
            body.push_str(&format!(" {l}"));
        }
        body.push('\n');
        for (c, w) in self.weights.iter().enumerate() {
            body.push_str(&format!("w {c}"));
            for v in w {
                body.push_str(&format!(" {v}"));
            }
            body.push('\n');
        }
        let digest = fnv1a(body.as_bytes());
        body.push_str(&format!("checksum {digest}\n"));
        body
    }

    /// Parses the `cmm-model/1` format, verifying magic, version and
    /// checksum.
    pub fn from_text(text: &str) -> Result<Model, ModelError> {
        let first = text.lines().next().unwrap_or("");
        if first != MODEL_MAGIC {
            return if first.starts_with("cmm-model/") {
                Err(ModelError::BadVersion(first.to_string()))
            } else {
                Err(ModelError::BadMagic)
            };
        }
        let checksum_at = text
            .lines()
            .position(|l| l.starts_with("checksum "))
            .ok_or_else(|| ModelError::Parse("missing checksum line".into()))?;
        let lines: Vec<&str> = text.lines().collect();
        let body: String = lines[..checksum_at].iter().map(|l| format!("{l}\n")).collect();
        let want = fnv1a(body.as_bytes());
        let got = lines[checksum_at].trim_start_matches("checksum ").trim().to_string();
        if want != got {
            return Err(ModelError::BadChecksum { want, got });
        }
        let field = |prefix: &str| -> Result<&str, ModelError> {
            lines
                .iter()
                .find_map(|l| l.strip_prefix(prefix))
                .ok_or_else(|| ModelError::Parse(format!("missing '{}' line", prefix.trim())))
        };
        if field("kind ")? != "multinomial-logistic" {
            return Err(ModelError::Parse(format!("unknown kind '{}'", field("kind ")?)));
        }
        let features: usize = field("features ")?
            .parse()
            .map_err(|_| ModelError::Parse("bad feature count".into()))?;
        if features != N_FEATURES {
            return Err(ModelError::Parse(format!(
                "model has {features} features, this build expects {N_FEATURES}"
            )));
        }
        let classes: usize =
            field("classes ")?.parse().map_err(|_| ModelError::Parse("bad class count".into()))?;
        let labels: Vec<u64> = field("labels ")?
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| ModelError::Parse("bad labels line".into()))?;
        if labels.len() != classes {
            return Err(ModelError::Parse("labels count disagrees with classes".into()));
        }
        let mut weights = vec![Vec::new(); classes];
        for l in &lines[..checksum_at] {
            if let Some(rest) = l.strip_prefix("w ") {
                let mut it = rest.split_whitespace();
                let c: usize = it
                    .next()
                    .ok_or_else(|| ModelError::Parse("empty weight line".into()))?
                    .parse()
                    .map_err(|_| ModelError::Parse("bad weight class index".into()))?;
                if c >= classes {
                    return Err(ModelError::Parse(format!("weight row {c} out of range")));
                }
                let row: Vec<f64> = it
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| ModelError::Parse("bad weight value".into()))?;
                if row.len() != N_FEATURES + 1 {
                    return Err(ModelError::Parse(format!(
                        "weight row {c} has {} values, want {}",
                        row.len(),
                        N_FEATURES + 1
                    )));
                }
                weights[c] = row;
            }
        }
        if weights.iter().any(Vec::is_empty) {
            return Err(ModelError::Parse("missing weight row".into()));
        }
        Ok(Model { labels, weights })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> Model {
        Model {
            labels: vec![0x0, 0x3, 0xF],
            weights: vec![
                vec![1.0, 0.0, 0.0, 0.0, 0.0, 2.0, 0.5, 0.0, 0.25],
                vec![0.0, 1.0, 0.5, 0.0, 0.0, -1.0, 0.0, 0.0, -0.125],
                vec![-1.0, 0.0, 0.0, 0.125, 1.0, -2.0, 0.0, 1.5, 0.0625],
            ],
        }
    }

    fn toy_samples() -> Vec<([f64; N_FEATURES], usize)> {
        // Three linearly separable blobs along the pf-accuracy axis.
        let mut s = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.01;
            s.push(([1.5, 0.1, 0.2, 1.0, 0.1, 0.9 - j, 0.6, 0.2], 0));
            s.push(([0.8, 0.3, 0.5, 5.0, 0.4, 0.5 - j, 0.5, 0.6], 1));
            s.push(([0.3, 0.6, 0.8, 20.0, 0.8, 0.1 + j, 0.4, 1.2], 2));
        }
        s
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let m = toy_model();
        let text = m.to_text();
        let back = Model::from_text(&text).expect("round trip");
        assert_eq!(back, m);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn wrong_magic_version_and_checksum_are_distinct_errors() {
        let m = toy_model();
        let text = m.to_text();
        assert_eq!(Model::from_text("garbage\n"), Err(ModelError::BadMagic));
        let v2 = text.replacen("cmm-model/1", "cmm-model/2", 1);
        assert!(matches!(Model::from_text(&v2), Err(ModelError::BadVersion(_))));
        let tampered = text.replacen("kind multinomial-logistic", "kind multinomial-logistiK", 1);
        assert!(matches!(Model::from_text(&tampered), Err(ModelError::BadChecksum { .. })));
        let truncated: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        assert!(matches!(Model::from_text(&truncated), Err(ModelError::Parse(_))));
    }

    #[test]
    fn training_is_deterministic_and_separates_blobs() {
        let samples = toy_samples();
        let a = Model::train(&samples, vec![0x0, 0x3, 0xF], 300, 0.5, 1e-4);
        let b = Model::train(&samples, vec![0x0, 0x3, 0xF], 300, 0.5, 1e-4);
        assert_eq!(a, b, "training must be a pure function of the samples");
        assert!(a.accuracy(&samples) >= 0.95, "accuracy {}", a.accuracy(&samples));
        // Confidence on a clear sample is meaningfully above chance.
        let p = a.predict(&samples[0].0);
        assert_eq!(p.class, 0);
        assert!(p.confidence > 0.5, "confidence {}", p.confidence);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = toy_model();
        let p = m.probabilities(&[0.5; N_FEATURES]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
    }
}
