//! Per-core feature extraction — the PMU-counter view the learned
//! controllers classify on.
//!
//! The crate is dependency-free, so the counters arrive as a plain
//! [`RawCounters`] struct; `cmm-core` maps its `PmuDelta` onto it. Every
//! feature is a dimension-free rate in a roughly unit range, so the
//! logistic classifier needs no input normalization pass.

/// Number of features in a vector — fixed by the `cmm-model/1` format.
pub const N_FEATURES: usize = 8;

/// Feature names, in vector order (documentation and journal tooling).
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "ipc",     // instructions per cycle
    "l1_mr",   // L1D miss rate
    "l2_mr",   // L2 miss rate (demand + prefetch)
    "llc_mpk", // LLC load misses per kilo-cycle
    "mlp",     // fraction of cycles with an L2 miss pending (MLP proxy)
    "pf_acc",  // prefetch accuracy (used / issued-to-memory)
    "pf_cov",  // prefetch coverage (prefetch share of L2 traffic)
    "mem_bpc", // memory bytes per cycle / 64 (bandwidth-deferral proxy)
];

/// One interval's raw counter deltas for one core. Field names follow the
/// simulator's PMU surface; any counter the host lacks can be left 0 —
/// every derived feature degrades to 0 on a zero denominator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RawCounters {
    /// Core cycles in the interval.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 requests (demand + prefetch).
    pub l2_requests: u64,
    /// L2 misses (demand + prefetch).
    pub l2_misses: u64,
    /// L2 prefetch requests (coverage numerator).
    pub l2_pf_requests: u64,
    /// LLC load misses.
    pub l3_load_misses: u64,
    /// Cycles with at least one L2 miss outstanding.
    pub stalls_l2_pending: u64,
    /// Prefetched lines that were used before eviction.
    pub pf_used: u64,
    /// Prefetched lines evicted unused.
    pub pf_wasted: u64,
    /// Total memory traffic (demand + prefetch) in bytes — the proxy for
    /// bandwidth-controller deferrals, which the PMU does not count
    /// directly.
    pub mem_bytes: u64,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Derives the feature vector from one core's counter deltas.
pub fn features(c: &RawCounters) -> [f64; N_FEATURES] {
    [
        ratio(c.instructions, c.cycles),
        ratio(c.l1d_misses, c.l1d_accesses),
        ratio(c.l2_misses, c.l2_requests),
        1000.0 * ratio(c.l3_load_misses, c.cycles),
        ratio(c.stalls_l2_pending, c.cycles),
        ratio(c.pf_used, c.pf_used + c.pf_wasted),
        ratio(c.l2_pf_requests, c.l2_requests),
        ratio(c.mem_bytes, c.cycles) / 64.0,
    ]
}

/// Element-wise mean of several feature vectors (the per-epoch journal
/// vector); empty input yields the zero vector.
pub fn mean(vectors: &[[f64; N_FEATURES]]) -> [f64; N_FEATURES] {
    let mut out = [0.0; N_FEATURES];
    if vectors.is_empty() {
        return out;
    }
    for v in vectors {
        for (o, x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }
    for o in &mut out {
        *o /= vectors.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counters_give_zero_features() {
        assert_eq!(features(&RawCounters::default()), [0.0; N_FEATURES]);
    }

    #[test]
    fn features_are_rates() {
        let c = RawCounters {
            cycles: 1000,
            instructions: 1500,
            l1d_accesses: 400,
            l1d_misses: 100,
            l2_requests: 120,
            l2_misses: 60,
            l2_pf_requests: 80,
            l3_load_misses: 30,
            stalls_l2_pending: 250,
            pf_used: 30,
            pf_wasted: 10,
            mem_bytes: 6400,
        };
        let f = features(&c);
        assert!((f[0] - 1.5).abs() < 1e-12);
        assert!((f[1] - 0.25).abs() < 1e-12);
        assert!((f[2] - 0.5).abs() < 1e-12);
        assert!((f[3] - 30.0).abs() < 1e-12);
        assert!((f[4] - 0.25).abs() < 1e-12);
        assert!((f[5] - 0.75).abs() < 1e-12);
        assert!((f[6] - (80.0 / 120.0)).abs() < 1e-12);
        assert!((f[7] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mean_averages_elementwise() {
        let a = [1.0; N_FEATURES];
        let b = [3.0; N_FEATURES];
        assert_eq!(mean(&[a, b]), [2.0; N_FEATURES]);
        assert_eq!(mean(&[]), [0.0; N_FEATURES]);
    }
}
