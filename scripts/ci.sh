#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, tests, and smoke runs of
# the repro harness's three CI surfaces — tables, the run journal, and the
# bench-compare regression gate. Prints a per-step timing summary at exit.
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-step timing: step NAME cmd... runs the command, records its wall
# time, and the EXIT trap prints the summary even on failure.
STEP_NAMES=()
STEP_SECS=()
step() {
    local name="$1"
    shift
    echo "== $name"
    local t0 t1
    t0=$(date +%s)
    "$@"
    t1=$(date +%s)
    STEP_NAMES+=("$name")
    STEP_SECS+=($((t1 - t0)))
}
summary() {
    echo "-- step timing --"
    local i
    for i in "${!STEP_NAMES[@]}"; do
        printf '%6ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
    done
}

tmp="$(mktemp -d)"
trap 'summary; rm -rf "$tmp"' EXIT

# Single-CPU runners (small CI boxes) still exercise the parallel paths,
# but with a matching job count so the smoke stays fast.
CPUS="$(nproc 2>/dev/null || echo 1)"
if [ "$CPUS" -ge 2 ]; then
    SMOKE_JOBS=2
else
    SMOKE_JOBS=1
    echo "note: single-CPU host, degrading smoke runs to --jobs 1"
fi

step "cargo fmt --check" cargo fmt --check
step "cargo clippy (all targets, warnings are errors)" \
    cargo clippy --workspace --all-targets -- -D warnings
step "cargo build --release" cargo build --release --workspace
step "cargo test" cargo test -q
step "cargo test --workspace" cargo test -q --workspace

smoke_repro() {
    # Determinism gate: tables AND journals must be byte-identical across
    # job counts.
    ./target/release/repro table1 --quick --jobs "$SMOKE_JOBS" \
        --bench-json "$tmp/BENCH_sim.json" \
        --journal "$tmp/journal.jobsN.jsonl" > "$tmp/table1.jobsN.txt"
    ./target/release/repro table1 --quick --jobs 1 \
        --bench-json "$tmp/BENCH_sim.1.json" \
        --journal "$tmp/journal.jobs1.jsonl" > "$tmp/table1.jobs1.txt"
    cmp "$tmp/table1.jobs1.txt" "$tmp/table1.jobsN.txt"
    cmp "$tmp/journal.jobs1.jsonl" "$tmp/journal.jobsN.jsonl"
    grep -q '"schema": "cmm-bench-sim/1"' "$tmp/BENCH_sim.json"
    grep -q '"cells_per_s"' "$tmp/BENCH_sim.json"
    # The journal carries real controller decisions.
    head -1 "$tmp/journal.jobs1.jsonl" | grep -q '"schema":"cmm-journal/2"'
    grep -q '"kind":"epoch"' "$tmp/journal.jobs1.jsonl"
    grep -q '"hm_ipc"' "$tmp/journal.jobs1.jsonl"
    grep -q '"winner"' "$tmp/journal.jobs1.jsonl"
}
step "repro smoke (table1, $SMOKE_JOBS jobs, journal determinism)" smoke_repro

smoke_journal_summary() {
    ./target/release/repro journal-summary "$tmp/journal.jobs1.jsonl" \
        > "$tmp/journal-summary.txt"
    grep -q 'journal-summary' "$tmp/journal-summary.txt"
    grep -q 'table1: ' "$tmp/journal-summary.txt"
}
step "repro journal-summary smoke" smoke_journal_summary

# Hard absolute floor on simulator hot-loop throughput, in simulated
# core-cycles per second. The committed value is deliberately far below a
# healthy run (~55M on a 1-CPU dev box, ~45M pre-event-core) so shared-
# runner noise cannot trip it, while an accidental O(n^2) scan, debug-path
# fallback, or similar order-of-magnitude hot-loop regression still fails
# CI. Raise it when the simulator gets faster; never chase noise with it.
SCPS_FLOOR=20000000

smoke_perf() {
    # The jobs-1 table1 log from smoke_repro is the stable measurement.
    ./target/release/repro bench-compare \
        benchmarks/BENCH_sim.baseline.json "$tmp/BENCH_sim.1.json" \
        --noise 1.0 --scps-floor "$SCPS_FLOOR" > /dev/null
    # And the floor really gates: an unreachable floor must fail.
    if ./target/release/repro bench-compare \
        benchmarks/BENCH_sim.baseline.json "$tmp/BENCH_sim.1.json" \
        --noise 1.0 --scps-floor 10000000000 > /dev/null 2>&1; then
        echo "--scps-floor failed to flag sub-floor throughput" >&2
        return 1
    fi
}
step "repro smoke_perf (sim-throughput floor at $SCPS_FLOOR cyc/s)" smoke_perf

smoke_bench_compare() {
    # Identical inputs: clean pass.
    ./target/release/repro bench-compare \
        "$tmp/BENCH_sim.json" "$tmp/BENCH_sim.json" > /dev/null
    # Committed 2x-slowdown fixture: the gate must fail (exit 1), even at
    # the lenient noise threshold the noisy-runner gate uses.
    if ./target/release/repro bench-compare \
        benchmarks/fixtures/compare_base.json \
        benchmarks/fixtures/compare_slow.json --noise 0.5 > /dev/null; then
        echo "bench-compare failed to flag a 2x slowdown" >&2
        return 1
    fi
}
step "repro bench-compare smoke (pass + injected 2x regression)" smoke_bench_compare

smoke_faults() {
    # Fault-injection smoke: fixed seeds, nonzero fault rate. The sweep
    # must exit cleanly (the smoothness gate holds) and its stdout AND
    # journal must be byte-identical across job counts — injected fault
    # schedules are part of the deterministic surface.
    ./target/release/repro faults --quick --seed 42 --fault-seed 7 \
        --jobs "$SMOKE_JOBS" --bench-json "$tmp/BENCH_faults.json" \
        --journal "$tmp/faults.jobsN.jsonl" > "$tmp/faults.jobsN.txt"
    ./target/release/repro faults --quick --seed 42 --fault-seed 7 \
        --jobs 1 --bench-json "$tmp/BENCH_faults.1.json" \
        --journal "$tmp/faults.jobs1.jsonl" > "$tmp/faults.jobs1.txt"
    cmp "$tmp/faults.jobs1.txt" "$tmp/faults.jobsN.txt"
    cmp "$tmp/faults.jobs1.jsonl" "$tmp/faults.jobsN.jsonl"
    # faults journals MBA trial levels now, so it carries the /4 schema.
    head -1 "$tmp/faults.jobs1.jsonl" | grep -q '"schema":"cmm-journal/4"'
    # Nonzero rates really injected and journaled faults, on both the
    # legacy CAT/prefetch leg and the MBA-register leg.
    grep -q '"faults":\[{' "$tmp/faults.jobs1.jsonl"
    grep -q '"mba":\[' "$tmp/faults.jobs1.jsonl"
}
step "repro faults smoke (determinism + journaled faults)" smoke_faults

smoke_journal_diff() {
    # Identical decision sequences: exit 0.
    ./target/release/repro journal-diff \
        "$tmp/faults.jobs1.jsonl" "$tmp/faults.jobsN.jsonl" > /dev/null
    # Different schemas (table1 is /2, faults is /4): the diff must refuse
    # the comparison (exit 2) rather than mis-diff across schemas.
    if ./target/release/repro journal-diff \
        "$tmp/journal.jobs1.jsonl" "$tmp/faults.jobs1.jsonl" \
        > /dev/null 2> "$tmp/schema-diff.err"; then
        echo "journal-diff compared journals with different schemas" >&2
        return 1
    fi
    grep -q 'schema mismatch' "$tmp/schema-diff.err"
}
step "repro journal-diff smoke (identical pass + schema refusal)" smoke_journal_diff

smoke_bandwidth() {
    # Three-resource comparison (CMM-a vs MBA vs CBP): the determinism
    # contract holds across job counts, the journal carries the /4 schema
    # with per-epoch MBA delay levels, and the wall clock gates against
    # the committed baseline at the same >2x bar as the other targets.
    ./target/release/repro bandwidth --quick --jobs "$SMOKE_JOBS" \
        --bench-json "$tmp/BENCH_bw.json" \
        --journal "$tmp/bw.jobsN.jsonl" > "$tmp/bw.jobsN.txt"
    ./target/release/repro bandwidth --quick --jobs 1 \
        --bench-json "$tmp/BENCH_bw.1.json" \
        --journal "$tmp/bw.jobs1.jsonl" > "$tmp/bw.jobs1.txt"
    cmp "$tmp/bw.jobs1.txt" "$tmp/bw.jobsN.txt"
    cmp "$tmp/bw.jobs1.jsonl" "$tmp/bw.jobsN.jsonl"
    head -1 "$tmp/bw.jobs1.jsonl" | grep -q '"schema":"cmm-journal/4"'
    grep -q '"mba":\[' "$tmp/bw.jobs1.jsonl"
    grep -q '"mechanism":"CBP"' "$tmp/bw.jobs1.jsonl"
    grep -q '"name": "bandwidth"' "$tmp/BENCH_bw.1.json"
    ./target/release/repro bench-compare \
        benchmarks/BENCH_bandwidth.baseline.json "$tmp/BENCH_bw.1.json" \
        --noise 1.0 --scps-floor "$SCPS_FLOOR" > /dev/null
}
step "repro bandwidth smoke (determinism, /4 journal, bench gate)" smoke_bandwidth

smoke_governor() {
    # Safety-governor gate: the fault sweep must pass its dominance gate
    # (governed CBP >= bare CBP at every nonzero rate — the run exits 1
    # otherwise), hold the determinism contract across job counts, journal
    # governor events under the /5 schema, and gate wall clock against the
    # committed baseline.
    ./target/release/repro governor --quick --jobs "$SMOKE_JOBS" \
        --bench-json "$tmp/BENCH_gov.json" \
        --journal "$tmp/gov.jobsN.jsonl" > "$tmp/gov.jobsN.txt"
    ./target/release/repro governor --quick --jobs 1 \
        --bench-json "$tmp/BENCH_gov.1.json" \
        --journal "$tmp/gov.jobs1.jsonl" > "$tmp/gov.jobs1.txt"
    cmp "$tmp/gov.jobs1.txt" "$tmp/gov.jobsN.txt"
    cmp "$tmp/gov.jobs1.jsonl" "$tmp/gov.jobsN.jsonl"
    head -1 "$tmp/gov.jobs1.jsonl" | grep -q '"schema":"cmm-journal/5"'
    # Hard-regime legs really exercised the defenses and journaled them.
    grep -q '"governor":\[' "$tmp/gov.jobs1.jsonl"
    grep -q '"action":"breaker_open"' "$tmp/gov.jobs1.jsonl"
    grep -q '"name": "governor"' "$tmp/BENCH_gov.1.json"
    ./target/release/repro bench-compare \
        benchmarks/BENCH_governor.baseline.json "$tmp/BENCH_gov.1.json" \
        --noise 1.0 --scps-floor "$SCPS_FLOOR" > /dev/null
}
step "repro governor smoke (dominance gate, determinism, /5 journal)" smoke_governor

smoke_learn() {
    # Learned-controllers gate: `repro learn` must pass its own floors
    # (ML-Sel >= 0.95x CMM-a on every mix, RL-CBP convergence — the run
    # exits 1 otherwise), hold the determinism contract across job counts,
    # journal per-epoch features/actions under the /6 schema, and gate
    # wall clock against the committed baseline. The committed cmm-model/1
    # fixture keeps the model (and thus the run identity) stable.
    ./target/release/repro learn --quick --jobs "$SMOKE_JOBS" \
        --model benchmarks/fixtures/mlsel.model \
        --bench-json "$tmp/BENCH_learn.json" \
        --journal "$tmp/learn.jobsN.jsonl" > "$tmp/learn.jobsN.txt"
    ./target/release/repro learn --quick --jobs 1 \
        --model benchmarks/fixtures/mlsel.model \
        --bench-json "$tmp/BENCH_learn.1.json" \
        --journal "$tmp/learn.jobs1.jsonl" > "$tmp/learn.jobs1.txt"
    cmp "$tmp/learn.jobs1.txt" "$tmp/learn.jobsN.txt"
    cmp "$tmp/learn.jobs1.jsonl" "$tmp/learn.jobsN.jsonl"
    head -1 "$tmp/learn.jobs1.jsonl" | grep -q '"schema":"cmm-journal/6"'
    head -1 "$tmp/learn.jobs1.jsonl" | grep -q '"learn":true'
    # Learned epochs really journaled their feature vectors and actions.
    grep -q '"features":\[' "$tmp/learn.jobs1.jsonl"
    grep -q '"action":"pf=\[' "$tmp/learn.jobs1.jsonl"
    grep -q '"mechanism":"RL-CBP"' "$tmp/learn.jobs1.jsonl"
    # journal-summary reports per-run decision churn.
    ./target/release/repro journal-summary "$tmp/learn.jobs1.jsonl" \
        | grep -q 'churn'
    # A corrupt model is a usage error (exit 2), before any simulation.
    sed 's/^w 0 /w 0 9/' benchmarks/fixtures/mlsel.model > "$tmp/corrupt.model"
    if ./target/release/repro learn --quick --model "$tmp/corrupt.model" \
        > /dev/null 2> "$tmp/learn-model.err"; then
        echo "repro learn accepted a corrupt model" >&2
        return 1
    fi
    grep -q 'checksum' "$tmp/learn-model.err"
    grep -q '"name": "learn"' "$tmp/BENCH_learn.1.json"
    ./target/release/repro bench-compare \
        benchmarks/BENCH_learn.baseline.json "$tmp/BENCH_learn.1.json" \
        --noise 1.0 --scps-floor "$SCPS_FLOOR" > /dev/null
}
step "repro learn smoke (controller gates, determinism, /6 journal)" smoke_learn

smoke_journal_csv() {
    # --csv exports one row per journal epoch, with the summary untouched.
    ./target/release/repro journal-summary "$tmp/journal.jobs1.jsonl" \
        --csv "$tmp/epochs.csv" > "$tmp/journal-summary-csv.txt"
    cmp "$tmp/journal-summary.txt" "$tmp/journal-summary-csv.txt"
    head -1 "$tmp/epochs.csv" \
        | grep -q '^run,epoch,mechanism,exec_hm_ipc,exec_ipc_delta,faults,degraded$'
    # Row count matches the journal's epoch-record count.
    rows=$(($(wc -l < "$tmp/epochs.csv") - 1))
    epochs=$(grep -c '"kind":"epoch"' "$tmp/journal.jobs1.jsonl")
    if [ "$rows" -ne "$epochs" ]; then
        echo "epochs.csv has $rows rows but the journal has $epochs epochs" >&2
        return 1
    fi
}
step "repro journal-summary --csv smoke" smoke_journal_csv

smoke_scale() {
    # --topology 1x8 must be the identity: stdout AND journal
    # byte-identical to the flagless single-socket run (the golden-diff
    # gate for the multi-socket refactor).
    ./target/release/repro table1 --quick --jobs 1 --topology 1x8 \
        --bench-json "$tmp/BENCH_t1x8.json" \
        --journal "$tmp/journal.t1x8.jsonl" > "$tmp/table1.t1x8.txt"
    cmp "$tmp/table1.jobs1.txt" "$tmp/table1.t1x8.txt"
    cmp "$tmp/journal.jobs1.jsonl" "$tmp/journal.t1x8.jsonl"
    # A multi-socket leg holds the determinism contract across --jobs and
    # journals per-CAT-domain records under the /3 schema.
    ./target/release/repro scale --quick --topology 2x16 --jobs "$SMOKE_JOBS" \
        --bench-json "$tmp/BENCH_scale.json" \
        --journal "$tmp/scale.jobsN.jsonl" > "$tmp/scale.jobsN.txt"
    ./target/release/repro scale --quick --topology 2x16 --jobs 1 \
        --bench-json "$tmp/BENCH_scale.1.json" \
        --journal "$tmp/scale.jobs1.jsonl" > "$tmp/scale.jobs1.txt"
    cmp "$tmp/scale.jobs1.txt" "$tmp/scale.jobsN.txt"
    cmp "$tmp/scale.jobs1.jsonl" "$tmp/scale.jobsN.jsonl"
    head -1 "$tmp/scale.jobs1.jsonl" | grep -q '"schema":"cmm-journal/3"'
    head -1 "$tmp/scale.jobs1.jsonl" | grep -q '"topology":"2x16"'
    grep -q '"domain":' "$tmp/scale.jobs1.jsonl"
    grep -q '"name": "scale_2x16"' "$tmp/BENCH_scale.1.json"
    # journal-summary groups the domains; journals from different machine
    # shapes are refused (exit 2), not mis-diffed.
    ./target/release/repro journal-summary "$tmp/scale.jobs1.jsonl" \
        | grep -q '\[d1\]'
    if ./target/release/repro journal-diff \
        "$tmp/journal.jobs1.jsonl" "$tmp/scale.jobs1.jsonl" \
        > /dev/null 2> "$tmp/scale-diff.err"; then
        echo "journal-diff compared journals from different topologies" >&2
        return 1
    fi
    grep -q 'topology mismatch' "$tmp/scale-diff.err"
}
step "repro smoke_scale (1x8 golden diff, 2x16 determinism, /3 journal)" smoke_scale

smoke_kill_resume() {
    # Crash-safety gate: a run hard-killed mid-sweep must resume from its
    # cmm-ckpt/1 sidecar and converge to byte-identical stdout + journal.
    local t="fig7" common=(--quick --mixes 1 --jobs "$SMOKE_JOBS")
    ./target/release/repro "$t" "${common[@]}" \
        --bench-json "$tmp/BENCH_clean.json" --journal "$tmp/clean.jsonl" \
        > "$tmp/clean.txt"
    # Kill after 2 completed cells: the harness exits 137 by design.
    if ./target/release/repro "$t" "${common[@]}" --chaos-kill 2 \
        --resume "$tmp/kill.ckpt" \
        --bench-json "$tmp/BENCH_killed.json" --journal "$tmp/killed.jsonl" \
        > "$tmp/killed.txt" 2> "$tmp/killed.err"; then
        echo "chaos-kill run unexpectedly survived" >&2
        return 1
    fi
    grep -q '"kind":"cell"' "$tmp/kill.ckpt" || {
        echo "checkpoint recorded no cells before the kill" >&2
        return 1
    }
    ./target/release/repro "$t" "${common[@]}" --resume "$tmp/kill.ckpt" \
        --bench-json "$tmp/BENCH_resumed.json" --journal "$tmp/resumed.jsonl" \
        > "$tmp/resumed.txt" 2> "$tmp/resumed.err"
    grep -q 'resuming from' "$tmp/resumed.err" || {
        echo "resume run did not splice the checkpoint" >&2
        return 1
    }
    cmp "$tmp/clean.txt" "$tmp/resumed.txt"
    cmp "$tmp/clean.jsonl" "$tmp/resumed.jsonl"
}
step "repro kill-and-resume smoke (byte-identical convergence)" smoke_kill_resume

smoke_trace() {
    # Trace pipeline gate: record -> convert (binary -> text -> binary,
    # byte-identical) -> trace-driven eval whose stdout AND journal are
    # byte-identical across job counts -> resume refusal on a different
    # trace set.
    ./target/release/repro trace record "$tmp/traces" --ops 20000 --seed 42 \
        > "$tmp/trace-record.txt"
    grep -q 'Recorded PrefAgg-00' "$tmp/trace-record.txt"
    [ "$(ls "$tmp/traces"/*.trc | wc -l)" -eq 8 ]
    first="$(ls "$tmp/traces"/*.trc | head -1)"
    ./target/release/repro trace convert "$first" "$tmp/roundtrip.txt" 2> /dev/null
    ./target/release/repro trace convert "$tmp/roundtrip.txt" "$tmp/roundtrip.trc" 2> /dev/null
    cmp "$first" "$tmp/roundtrip.trc"
    ./target/release/repro trace stat "$tmp/traces"/*.trc > "$tmp/trace-stat.txt"
    grep -q 'est MLP' "$tmp/trace-stat.txt"
    # Trace-driven evaluation: the determinism contract holds for traces.
    ./target/release/repro fig7 --quick --trace-dir "$tmp/traces" \
        --jobs "$SMOKE_JOBS" --bench-json "$tmp/BENCH_trace.json" \
        --journal "$tmp/trace.jobsN.jsonl" > "$tmp/trace.jobsN.txt"
    ./target/release/repro fig7 --quick --trace-dir "$tmp/traces" \
        --jobs 1 --bench-json "$tmp/BENCH_trace.1.json" \
        --journal "$tmp/trace.jobs1.jsonl" > "$tmp/trace.jobs1.txt"
    cmp "$tmp/trace.jobs1.txt" "$tmp/trace.jobsN.txt"
    cmp "$tmp/trace.jobs1.jsonl" "$tmp/trace.jobsN.jsonl"
    grep -q '"run":"Trace-00' "$tmp/trace.jobs1.jsonl"
    # The trace set is part of the run identity: resuming against a
    # different set must be refused (exit 2), not silently spliced.
    ./target/release/repro fig7 --quick --trace-dir "$tmp/traces" \
        --jobs "$SMOKE_JOBS" --resume "$tmp/trace.ckpt" \
        --bench-json "$tmp/BENCH_trace_a.json" --journal "$tmp/trace_a.jsonl" \
        > /dev/null 2>&1
    ./target/release/repro trace record "$tmp/traces2" --ops 20000 --seed 99 \
        > /dev/null
    if ./target/release/repro fig7 --quick --trace-dir "$tmp/traces2" \
        --jobs "$SMOKE_JOBS" --resume "$tmp/trace.ckpt" \
        --bench-json "$tmp/BENCH_trace_b.json" --journal "$tmp/trace_b.jsonl" \
        > /dev/null 2> "$tmp/trace-refuse.err"; then
        echo "resume accepted a checkpoint from a different trace set" >&2
        return 1
    fi
    grep -q -- '--resume:' "$tmp/trace-refuse.err"
}
step "repro trace smoke (record/convert/stat, trace-dir determinism, resume refusal)" smoke_trace

step "repro soak (chaos: panic retry, failure isolation, kill + resume)" \
    ./target/release/repro soak --jobs "$SMOKE_JOBS"

echo "CI OK"
