#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, tests, and a smoke run
# of the parallel repro harness on a tiny configuration.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test -q"
cargo test -q

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== repro smoke (table1, 2 jobs, tiny config)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/repro table1 --quick --jobs 2 \
    --bench-json "$tmp/BENCH_sim.json" > "$tmp/table1.jobs2.txt"
./target/release/repro table1 --quick --jobs 1 \
    --bench-json "$tmp/BENCH_sim.1.json" > "$tmp/table1.jobs1.txt"
cmp "$tmp/table1.jobs1.txt" "$tmp/table1.jobs2.txt"
grep -q '"schema": "cmm-bench-sim/1"' "$tmp/BENCH_sim.json"
grep -q '"cells_per_s"' "$tmp/BENCH_sim.json"

echo "CI OK"
