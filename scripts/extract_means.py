import re, sys
text = open('repro_output.txt').read()
blocks = re.split(r'(?=## )', text)
for b in blocks:
    title = b.splitlines()[0] if b.strip() else ''
    means = re.findall(r'^(Pref [\w ]+?)\s{2,}([\d. ]+)\s+\(mean\)', b, re.M)
    if means and title.startswith('## Fig'):
        print(title)
        for cat, vals in means:
            print(f"  {cat:12} {vals.strip()}")
