//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! implements the subset of the criterion API the workspace's benches use:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BenchmarkId`,
//! `BatchSize` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple: after a short warm-up it reports the
//! mean wall-clock time per iteration over a bounded number of samples (no
//! outlier analysis, no HTML reports). When invoked with `--test` (as
//! `cargo test` does for bench targets) or with `CMM_BENCH_FAST=1` set,
//! every routine runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark id.
const MEASURE_BUDGET: Duration = Duration::from_secs(2);
/// Warm-up budget per benchmark id.
const WARMUP_BUDGET: Duration = Duration::from_millis(200);

/// How throughput is derived from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times every
/// batch individually, so this only documents intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark's display identity.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identity.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identity from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into [`BenchmarkId`], so `&str` works where ids do.
pub trait IntoBenchmarkId {
    /// The id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Collects timing samples for one benchmark routine.
pub struct Bencher {
    /// Run each routine exactly once (smoke mode).
    test_mode: bool,
    /// Total measured time and iteration count.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(test_mode: bool) -> Self {
        Bencher { test_mode, elapsed: Duration::ZERO, iters: 0 }
    }

    fn budget_left(&self) -> bool {
        !self.test_mode && self.elapsed < MEASURE_BUDGET
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, then adaptively sized measurement batches.
        let mut warm = Duration::ZERO;
        while !self.test_mode && warm < WARMUP_BUDGET {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            warm += t0.elapsed();
        }
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if !self.budget_left() || self.test_mode {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if !self.test_mode {
            // One warm-up batch.
            let input = setup();
            std::hint::black_box(routine(input));
        }
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if !self.budget_left() || self.test_mode {
                break;
            }
        }
    }

    /// Like `iter_batched`, timing batches of references.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        loop {
            let mut input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if !self.budget_left() || self.test_mode {
                break;
            }
        }
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{name:<48} (no samples)");
        return;
    }
    if bencher.test_mode {
        println!("{name:<48} ok (smoke, 1 iter)");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let mut line = format!(
        "{name:<48} time: {:>12}/iter  ({} iters)",
        format_time(ns_per_iter),
        bencher.iters
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 * 1e9 / ns_per_iter;
        line.push_str(&format!("  thrpt: {}", format_rate(per_sec, unit)));
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode =
            std::env::args().any(|a| a == "--test") || std::env::var_os("CMM_BENCH_FAST").is_some();
        Criterion { test_mode }
    }
}

impl Criterion {
    /// No-op for CLI compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function(
        &mut self,
        name: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = name.into_benchmark_id();
        let mut b = Bencher::new(self.test_mode);
        f(&mut b);
        report(&id.id, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (time budgets are fixed).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used for rate reporting of following benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.criterion.test_mode);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.criterion.test_mode);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` for API compatibility.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new(true);
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.iters, 1, "test mode runs exactly once");
        assert_eq!(count, 1);
    }

    #[test]
    fn batched_setup_excluded_from_iters() {
        let mut b = Bencher::new(true);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(10.0), "10.0 ns");
        assert_eq!(format_time(1500.0), "1.50 µs");
        assert_eq!(format_time(2_500_000.0), "2.50 ms");
    }
}
