//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/collection strategies,
//! `Just`, `any`, `prop_oneof!`, and the `proptest!`/`prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case reports the generated input (via
//!   `Debug`) and the case's deterministic seed instead of minimising it.
//! * **Deterministic seeding.** Every test function regenerates the same
//!   case sequence on every run, so CI failures reproduce locally.

pub mod test_runner {
    //! Test execution: config, RNG and error plumbing.

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (e.g. by an assume); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected input.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Executes a property over `cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        fn case_seed(case: u32) -> u64 {
            0xC3D0_5EED_u64 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Runs `test` against `cases` inputs drawn from `strategy`,
        /// panicking (with the offending input) on the first failure.
        pub fn run<S: crate::strategy::Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) where
            S::Value: std::fmt::Debug,
        {
            for case in 0..self.config.cases {
                let seed = Self::case_seed(case);
                let value = strategy.generate(&mut TestRng::new(seed));
                match test(value) {
                    Ok(()) | Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        // Regenerate for the report: the test consumed it.
                        let value = strategy.generate(&mut TestRng::new(seed));
                        panic!("property failed at case {case} (seed {seed:#x}): {msg}\n  input: {value:?}");
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from an RNG.
    ///
    /// Unlike real proptest there is no shrinking; `generate` is the whole
    /// contract.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erased form, for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! unsigned_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo + rng.below(span + 1) as $t
                    }
                }
            }
        )*};
    }

    unsigned_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategies!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! `Vec` and `BTreeSet` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Admissible collection sizes, `[min, max)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_excl: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_excl: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_excl: *r.end() + 1 }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_excl - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` with up to `size.into()` elements drawn from `element`
    /// (duplicates collapse, so the set may come out smaller — matching
    /// real proptest's behaviour for narrow element domains).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat), )+
        ])
    };
}

/// Declares property-test functions; see the crate docs for the dialect.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ( $($strat,)+ );
                runner.run(&strategy, |( $($arg,)+ )| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` (both: `{:?}`)",
            left
        );
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        let s = 5u64..10;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..10).contains(&v));
        }
        let f = 0.5f64..2.0;
        for _ in 0..100 {
            let v = f.generate(&mut rng);
            assert!((0.5..2.0).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1000, 0usize..8).prop_map(|(a, b)| a + b as u64);
        let a = s.generate(&mut crate::test_runner::TestRng::new(7));
        let b = s.generate(&mut crate::test_runner::TestRng::new(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_dialect_roundtrips(v in crate::collection::vec(0u32..10, 1..5), flag in any::<bool>()) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 10), "element out of range: {v:?}");
            let _ = flag;
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
