//! # cmm — Coordinated Multi-resource Management
//!
//! Umbrella crate for the reproduction of Sun, Shen & Veidenbaum,
//! *Combining Prefetch Control and Cache Partitioning to Improve Multicore
//! Performance* (IPDPS 2019). It re-exports the workspace crates:
//!
//! * [`sim`] — the machine substrate: multicore cache hierarchy, the four
//!   Intel-style hardware prefetchers, CAT way-partitioning, PMU and MSR
//!   emulation ([`cmm_sim`]).
//! * [`workloads`] — synthetic SPEC-CPU2006-class benchmarks and the
//!   paper's four workload-mix categories ([`cmm_workloads`]).
//! * [`metrics`] — harmonic/weighted speedup, ANTT, `hm_ipc`, worst-case
//!   speedup and 1-D k-means ([`cmm_metrics`]).
//! * [`core`] — the paper's contribution: the CMM controller with its
//!   Agg-set front-end and the PT / CP / Dunn / CMM-a/b/c back-ends
//!   ([`cmm_core`]).
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the system inventory.

pub use cmm_core as core;
pub use cmm_metrics as metrics;
pub use cmm_sim as sim;
pub use cmm_workloads as workloads;

/// One-stop import for examples and downstream users.
pub mod prelude {
    pub use cmm_core::prelude::*;
    pub use cmm_metrics::{harmonic_speedup, hm_ipc, weighted_speedup, worst_case_speedup};
    pub use cmm_sim::prelude::*;
    pub use cmm_workloads::{build_mixes, roster, Category, Mix};
}
