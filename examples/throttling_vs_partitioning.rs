//! The paper's central question, live: prefetch throttling or cache
//! partitioning — and is the coordinated combination better than either?
//!
//! Runs one prefetch-aggressive workload mix under the baseline, PT,
//! Pref-CP, Dunn, and CMM-a/b/c, then prints the harmonic-speedup /
//! weighted-speedup / worst-case table (the Fig. 13 comparison for a
//! single workload).
//!
//! ```sh
//! cargo run --release --example throttling_vs_partitioning
//! ```

use cmm::core::experiment::{run_alone_ipcs, run_mix, ExperimentConfig};
use cmm::core::policy::Mechanism;
use cmm::metrics;
use cmm::workloads::{build_mixes, Category};

fn main() {
    // A Pref Agg mix: 2 friendly + 2 unfriendly + 4 non-aggressive.
    let mix = build_mixes(7, 1)
        .into_iter()
        .find(|m| m.category == Category::PrefAgg)
        .expect("categories always built");
    println!(
        "workload {}: {:?}\n",
        mix.name,
        mix.slots.iter().map(|s| s.name()).collect::<Vec<_>>()
    );

    let cfg = ExperimentConfig::default();
    eprintln!("measuring run-alone IPCs ...");
    let alone = run_alone_ipcs(&mix, &cfg);
    eprintln!("running baseline ...");
    let base = run_mix(&mix, Mechanism::Baseline, &cfg);
    let base_hs = metrics::harmonic_speedup(&alone, &base.ipcs);

    println!("mechanism   norm.HS   norm.WS   worst-case   mem traffic");
    println!("baseline      1.000     1.000        1.000        1.000");
    for mech in Mechanism::all_managed() {
        eprintln!("running {} ...", mech.label());
        let r = run_mix(&mix, mech, &cfg);
        let hs = metrics::harmonic_speedup(&alone, &r.ipcs) / base_hs;
        let ws = metrics::weighted_speedup(&r.ipcs, &base.ipcs) / mix.num_cores() as f64;
        let wc = metrics::worst_case_speedup(&r.ipcs, &base.ipcs);
        let bw = r.mem_bytes as f64 / base.mem_bytes.max(1) as f64;
        println!("{:<10} {:>8.3}  {:>8.3}  {:>11.3}  {:>11.3}", mech.label(), hs, ws, wc, bw);
    }
    println!("\nHigher HS/WS/worst-case is better; PT should show the lowest");
    println!("memory traffic and CMM-a/c the best HS — the paper's Fig. 13/14 shape.");
}
