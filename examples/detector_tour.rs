//! A tour of the CMM front-end: watch the Table I metrics and the Fig. 5
//! detector cascade classify a live system, then probe prefetch
//! friendliness the way the back-end does.
//!
//! ```sh
//! cargo run --release --example detector_tour
//! ```

use cmm::core::backend;
use cmm::core::frontend::{detect_agg, metrics, DetectorConfig};
use cmm::core::policy::ControllerConfig;
use cmm::sim::config::SystemConfig;
use cmm::sim::System;
use cmm::workloads::spec;

fn main() {
    // One representative of each class.
    let names = ["bwaves3d", "rand_access", "omnet_events", "povray_rt"];
    let cfg = SystemConfig::scaled(names.len());
    let llc = cfg.llc.size_bytes;
    let workloads = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Box::new(spec::by_name(n).unwrap().instantiate(llc, (i as u64 + 1) << 36, 3)) as _
        })
        .collect();
    let mut sys = System::new(cfg, workloads);

    println!("warming up 600k cycles ...");
    sys.run(600_000);

    // Sampling interval 1: all prefetchers on.
    let ctrl = ControllerConfig::default();
    let det_cfg = DetectorConfig::default();
    let d1 = backend::sample(&mut sys, ctrl.sampling_interval);
    println!("\nTable I metrics over one {}-cycle interval:", ctrl.sampling_interval);
    println!("core  benchmark      IPC     PGA    PMR     PTR    LLC-PT");
    for (i, d) in d1.iter().enumerate() {
        let m = metrics(d);
        println!(
            "{i:>4}  {:<12} {:>5.3}  {:>6.2}  {:>5.2}  {:>6.4}  {:>7.3}",
            names[i],
            d.ipc(),
            m.pga,
            m.l2_pmr,
            m.l2_ptr,
            m.llc_pt
        );
    }

    let agg = detect_agg(&d1, &det_cfg);
    println!(
        "\nFig. 5 cascade (PGA ≥ {}, PMR ≥ {}, PTR ≥ {}):",
        det_cfg.pga_floor, det_cfg.pmr_threshold, det_cfg.ptr_threshold
    );
    println!("Agg set = {:?}  ({:?})", agg, agg.iter().map(|&c| names[c]).collect::<Vec<_>>());

    // Full detection incl. the friendliness probe (interval 2 with the
    // Agg prefetchers off).
    let det = backend::detect(&mut sys, &ctrl, &det_cfg);
    println!("\nfriendliness probe (interval 2, Agg prefetchers off):");
    println!("friendly   = {:?}", det.friendly.iter().map(|&c| names[c]).collect::<Vec<_>>());
    println!("unfriendly = {:?}", det.unfriendly.iter().map(|&c| names[c]).collect::<Vec<_>>());
    println!("\nExpected: the stream is aggressive+friendly, Rand Access is");
    println!("aggressive+unfriendly, and the chase/compute cores are neutral.");
}
