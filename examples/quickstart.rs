//! Quickstart: build a machine, run a mixed workload under CMM, and read
//! the performance/fairness metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cmm::core::driver::Driver;
use cmm::core::policy::{ControllerConfig, Mechanism};
use cmm::metrics;
use cmm::sim::config::SystemConfig;
use cmm::sim::System;
use cmm::workloads::spec;

fn main() {
    // 1. A machine: 4 cores, private L1/L2, shared 20-way LLC (scaled
    //    geometry — same topology as the paper's Xeon E5-2620 v4).
    let cfg = SystemConfig::scaled(4);
    let llc_bytes = cfg.llc.size_bytes;

    // 2. A multiprogrammed workload: a prefetch-friendly stream, the
    //    paper's prefetch-unfriendly "Rand Access" micro-benchmark, an
    //    LLC-sensitive pointer chase, and a compute-bound filler.
    let names = ["bwaves3d", "rand_access", "mcf_refine", "povray_rt"];
    let workloads = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let b = spec::by_name(n).expect("roster benchmark");
            Box::new(b.instantiate(llc_bytes, (i as u64 + 1) << 36, 1)) as _
        })
        .collect();

    // 3. Baseline run: all prefetchers on, no partitioning, no control.
    let mut baseline = System::new(cfg.clone(), mk(&names, llc_bytes));
    baseline.run(4_000_000);
    let base_ipcs: Vec<f64> = (0..4).map(|c| baseline.pmu(c).ipc()).collect();

    // 4. The same workload managed by CMM-a (coordinated partitioning +
    //    throttling).
    let sys = System::new(cfg, workloads);
    let mut driver = Driver::new(sys, Mechanism::CmmA, ControllerConfig::default());
    driver.run_total(4_000_000);
    let cmm_ipcs: Vec<f64> = (0..4).map(|c| driver.system().pmu(c).ipc()).collect();

    // 5. Compare.
    println!("core  benchmark     baseline IPC   CMM-a IPC   speedup");
    for i in 0..4 {
        println!(
            "{i:>4}  {:<12}  {:>12.3}  {:>10.3}  {:>+7.1}%",
            names[i],
            base_ipcs[i],
            cmm_ipcs[i],
            (cmm_ipcs[i] / base_ipcs[i] - 1.0) * 100.0
        );
    }
    let ws = metrics::weighted_speedup(&cmm_ipcs, &base_ipcs) / 4.0;
    let wc = metrics::worst_case_speedup(&cmm_ipcs, &base_ipcs);
    println!("\nweighted speedup vs baseline: {ws:.3}  (1.0 = parity)");
    println!("worst-case per-app speedup:   {wc:.3}");
    println!("controller overhead:          {:.4}%", driver.overhead_ratio() * 100.0);
    println!(
        "final CAT masks: {:?}",
        (0..4).map(|c| format!("{:020b}", driver.system().effective_mask(c))).collect::<Vec<_>>()
    );
    println!(
        "prefetchers on:  {:?}",
        (0..4).map(|c| driver.system().prefetching_enabled(c)).collect::<Vec<_>>()
    );
}

fn mk(names: &[&str], llc_bytes: u64) -> Vec<Box<dyn cmm::sim::workload::Workload + Send>> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let b = spec::by_name(n).expect("roster benchmark");
            Box::new(b.instantiate(llc_bytes, (i as u64 + 1) << 36, 1)) as _
        })
        .collect()
}
