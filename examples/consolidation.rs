//! A server-consolidation scenario: a latency-sensitive, LLC-resident
//! service is co-located with batch streaming jobs — the intro's
//! motivating case for performance isolation.
//!
//! The "service" is an LLC-sensitive pointer chase; the "batch" jobs are
//! prefetch-aggressive streams. We sweep three operating points and report
//! the service's IPC (its latency proxy) and total batch throughput:
//!
//! 1. uncontrolled sharing (the paper's baseline),
//! 2. static CAT partitioning of the batch jobs (Pref-CP-style, by hand,
//!    through the raw MSR interface — what an operator could do today),
//! 3. CMM-c dynamic coordinated management.
//!
//! ```sh
//! cargo run --release --example consolidation
//! ```

use cmm::core::driver::Driver;
use cmm::core::policy::{ControllerConfig, Mechanism};
use cmm::sim::config::SystemConfig;
use cmm::sim::msr::{contiguous_mask, IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC};
use cmm::sim::System;
use cmm::workloads::spec;

const SERVICE: usize = 0;
const NAMES: [&str; 6] =
    ["omnet_events", "bwaves3d", "lbm_fluid", "gems_fdtd", "rand_access", "povray_rt"];
const CYCLES: u64 = 4_000_000;

fn machine() -> System {
    let cfg = SystemConfig::scaled(NAMES.len());
    let llc = cfg.llc.size_bytes;
    let workloads = NAMES
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Box::new(spec::by_name(n).unwrap().instantiate(llc, (i as u64 + 1) << 36, 5)) as _
        })
        .collect();
    System::new(cfg, workloads)
}

fn report(label: &str, sys: &System) {
    let service_ipc = sys.pmu(SERVICE).ipc();
    let batch_ipc: f64 = (1..NAMES.len() - 1).map(|c| sys.pmu(c).ipc()).sum();
    println!(
        "{label:<28} service IPC {service_ipc:>6.3}   batch ΣIPC {batch_ipc:>6.3}   service stalls beyond L2 {:>5.1}%",
        100.0 * sys.pmu(SERVICE).stalls_l2_pending as f64 / sys.pmu(SERVICE).cycles as f64
    );
}

fn main() {
    println!("co-locating {:?}\n", NAMES);

    // 1. Uncontrolled sharing.
    let mut sys = machine();
    sys.run(CYCLES);
    report("uncontrolled", &sys);

    // 2. Operator-style static CAT: squeeze the four batch aggressors into
    //    4 low ways via the raw MSR surface (what `resctrl` would program).
    let mut sys = machine();
    sys.write_msr(0, IA32_L3_QOS_MASK_BASE + 1, contiguous_mask(0, 4)).unwrap();
    for batch_core in 1..=4 {
        sys.write_msr(batch_core, IA32_PQR_ASSOC, 1).unwrap();
    }
    sys.run(CYCLES);
    report("static CAT (4 ways batch)", &sys);

    // 3. CMM-c: dynamic detection + coordinated partition/throttle.
    let mut driver = Driver::new(machine(), Mechanism::CmmC, ControllerConfig::default());
    driver.run_total(CYCLES);
    report("CMM-c (dynamic)", driver.system());

    println!("\nThe service should recover most of its isolated IPC under CMM-c");
    println!("without the operator having to size a static partition by hand.");
}
