//! Fault-injection resilience: the controller stack must survive a faulty
//! substrate — transient WRMSR rejections, exhausted CLOS, corrupt PMU
//! snapshots — without panicking, while degrading performance boundedly
//! and journaling every fault and fallback it took. And the decorator must
//! be invisible at rate zero: a `FaultySubstrate` with no faults scheduled
//! produces byte-identical journals to the bare machine.

use cmm_core::experiment::{run_mix, run_mix_with_faults, ExperimentConfig};
use cmm_core::fault::FaultConfig;
use cmm_core::policy::Mechanism;
use cmm_metrics::hm_ipc;
use cmm_workloads::build_mixes;

#[test]
fn fault_storm_degrades_boundedly() {
    let mix = build_mixes(11, 1).remove(1); // a PrefAgg mix
    let cfg = ExperimentConfig::quick();
    let clean = run_mix(&mix, Mechanism::CmmA, &cfg);
    let stormy = run_mix_with_faults(&mix, Mechanism::CmmA, &cfg, &FaultConfig::uniform(7, 0.2));

    let clean_hm = hm_ipc(&clean.ipcs);
    let storm_hm = hm_ipc(&stormy.ipcs);
    assert!(clean_hm > 0.0);
    assert!(
        storm_hm >= 0.4 * clean_hm,
        "20% fault rate cliffed hm_ipc: {storm_hm:.3} vs clean {clean_hm:.3}"
    );

    // The storm was real and the controller journaled it.
    let faults: usize = stormy.epochs.iter().map(|e| e.faults.len()).sum();
    assert!(faults > 0, "no faults recorded at 20% rate");
    let recovered = stormy
        .epochs
        .iter()
        .flat_map(|e| &e.faults)
        .any(|f| f.action == "retry_ok" || f.action == "reread" || f.action == "zeroed_sample");
    assert!(recovered, "expected at least one recovery action in the journal");
}

#[test]
fn exhausted_cat_walks_the_fallback_chain() {
    let mix = build_mixes(11, 1).remove(1);
    let cfg = ExperimentConfig::quick();
    // Only CLOS 0 exists: CMM-a's partition cannot be programmed, and
    // neither can Dunn's (CLOS 1..), so every partitioning epoch must
    // retreat CMM → Dunn → no-op and say so in the journal.
    let mut faults = FaultConfig::none();
    faults.clos_limit = Some(1);
    let r = run_mix_with_faults(&mix, Mechanism::CmmA, &cfg, &faults);

    let degraded: Vec<_> = r.epochs.iter().filter_map(|e| e.degraded).collect();
    assert!(degraded.contains(&"no-op"), "no epoch reached the no-op fallback: {degraded:?}");
    let actions: Vec<&str> = r.epochs.iter().flat_map(|e| &e.faults).map(|f| f.action).collect();
    assert!(actions.contains(&"fallback_dunn"), "missing fallback_dunn in {actions:?}");
    assert!(actions.contains(&"fallback_noop"), "missing fallback_noop in {actions:?}");
    assert!(
        r.epochs.iter().flat_map(|e| &e.faults).any(|f| f.kind == "clos_exhausted"),
        "CLOS exhaustion never journaled"
    );
    // The run still produced sane throughput (prefetch throttling needs no
    // CAT, and the no-op fallback keeps the machine unpartitioned).
    assert!(hm_ipc(&r.ipcs) > 0.0);
}

#[test]
fn zero_fault_decorator_is_byte_invisible() {
    let mix = build_mixes(11, 1).remove(1);
    let cfg = ExperimentConfig::quick();
    let bare = run_mix(&mix, Mechanism::CmmA, &cfg);
    let wrapped = run_mix_with_faults(&mix, Mechanism::CmmA, &cfg, &FaultConfig::none());

    assert_eq!(bare.ipcs, wrapped.ipcs);
    assert_eq!(bare.mem_bytes, wrapped.mem_bytes);
    assert_eq!(bare.epochs, wrapped.epochs);
    // Journal byte-identity, the property CI's fault smoke leans on.
    let render = |epochs: &[cmm_core::telemetry::EpochRecord]| -> String {
        epochs.iter().map(|e| e.to_json_line("mix: CMM-a")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(render(&bare.epochs), render(&wrapped.epochs));
    assert!(bare.epochs.iter().all(|e| e.faults.is_empty() && e.degraded.is_none()));
}
