//! The controller ↔ machine contract: everything the CMM driver does must
//! go through (and stay consistent with) the emulated MSR/CAT surface, the
//! same surface the paper's kernel module uses on hardware.

use cmm_core::driver::Driver;
use cmm_core::policy::{ControllerConfig, Mechanism};
use cmm_sim::config::SystemConfig;
use cmm_sim::msr::{
    mask_is_contiguous, IA32_L3_QOS_MASK_BASE, IA32_PQR_ASSOC, MSR_MISC_FEATURE_CONTROL,
};
use cmm_sim::System;
use cmm_workloads::build_mixes;

fn managed_system(mechanism: Mechanism, cycles: u64) -> Driver {
    let mix = build_mixes(42, 1).remove(1); // PrefAgg
    let cfg = SystemConfig::scaled(mix.num_cores());
    let sys = System::new(cfg.clone(), mix.instantiate(cfg.llc.size_bytes));
    let mut drv = Driver::new(sys, mechanism, ControllerConfig::quick());
    drv.run_total(cycles);
    drv
}

#[test]
fn driver_only_ever_programs_valid_cat_state() {
    for mech in Mechanism::all_managed() {
        let drv = managed_system(mech, 600_000);
        let sys = drv.system();
        for clos in 0..4 {
            let mask = sys.read_msr(0, IA32_L3_QOS_MASK_BASE + clos).unwrap();
            assert!(mask != 0, "{}: CLOS {clos} mask empty", mech.label());
            assert!(
                mask_is_contiguous(mask),
                "{}: CLOS {clos} mask {mask:#x} not contiguous",
                mech.label()
            );
            assert!(mask < 1 << sys.llc_ways());
        }
        for core in 0..sys.num_cores() {
            let clos = sys.read_msr(core, IA32_PQR_ASSOC).unwrap() as usize;
            assert!(clos < sys.config().num_clos);
        }
    }
}

#[test]
fn prefetch_msr_reflects_throttling_decisions() {
    for mech in Mechanism::all_managed() {
        let drv = managed_system(mech, 600_000);
        let sys = drv.system();
        for core in 0..sys.num_cores() {
            let msr = sys.read_msr(core, MSR_MISC_FEATURE_CONTROL).unwrap();
            // The controller throttles all four engines together: the MSR
            // image is either all-enabled or all-disabled.
            assert!(msr == 0x0 || msr == 0xF, "{}: core {core} MSR {msr:#x}", mech.label());
            assert_eq!(sys.prefetching_enabled(core), msr == 0x0);
        }
    }
}

#[test]
fn cp_mechanisms_never_throttle() {
    for mech in [Mechanism::Dunn, Mechanism::PrefCp, Mechanism::PrefCp2] {
        let drv = managed_system(mech, 600_000);
        let sys = drv.system();
        for core in 0..sys.num_cores() {
            assert!(
                sys.prefetching_enabled(core),
                "{}: CP-only mechanism disabled prefetchers on core {core}",
                mech.label()
            );
        }
    }
}

#[test]
fn pt_never_partitions() {
    let drv = managed_system(Mechanism::Pt, 600_000);
    let sys = drv.system();
    let full = (1u64 << sys.llc_ways()) - 1;
    for core in 0..sys.num_cores() {
        assert_eq!(sys.effective_mask(core), full, "PT must not touch CAT");
    }
}

#[test]
fn overlapping_partitions_preserve_hit_semantics() {
    // A line inserted by a restricted core must still be hittable by it
    // after the neutral cores overwrite other ways — end-to-end CAT check.
    let cfg = SystemConfig::scaled(2);
    let mix = build_mixes(5, 1).remove(0);
    let workloads = mix.instantiate(cfg.llc.size_bytes);
    let mut sys = System::new(SystemConfig::scaled(8), workloads);
    sys.write_msr(0, IA32_L3_QOS_MASK_BASE + 1, 0b11).unwrap();
    sys.write_msr(0, IA32_PQR_ASSOC, 1).unwrap();
    sys.run(300_000);
    // The restricted core still makes forward progress.
    assert!(sys.pmu(0).instructions > 0);
    assert_eq!(sys.effective_mask(0), 0b11);
}
