//! Cross-crate integration: every roster benchmark's *measured* behaviour
//! (via `cmm-bench`'s Fig. 1–3 characterisation on the `cmm-sim` machine)
//! must match the class `cmm-workloads` declares for it. This is the
//! contract the whole evaluation rests on.

use cmm_bench::characterize::{prefetch_impact, run_alone, CharacterizeConfig};
use cmm_sim::config::SystemConfig;
use cmm_workloads::spec::{self, thresholds};

fn cfgs() -> (SystemConfig, CharacterizeConfig) {
    (SystemConfig::scaled(1), CharacterizeConfig::quick())
}

#[test]
fn fig1_aggressiveness_matches_declared_class() {
    let (sys, cfg) = cfgs();
    for b in spec::roster() {
        let imp = prefetch_impact(b, &sys, &cfg);
        let measured = imp.off.demand_bpc > thresholds::DEMAND_INTENSIVE_BPC
            && imp.bw_increase() > thresholds::AGGRESSIVE_BW_INCREASE;
        assert_eq!(
            measured,
            b.class.prefetch_aggressive,
            "{}: demand {:.2} B/c, BW increase {:+.0}%",
            b.name,
            imp.off.demand_bpc,
            imp.bw_increase() * 100.0
        );
    }
}

#[test]
fn fig2_friendliness_matches_declared_class() {
    let (sys, cfg) = cfgs();
    for b in spec::roster() {
        let imp = prefetch_impact(b, &sys, &cfg);
        let measured = imp.ipc_speedup() > thresholds::FRIENDLY_IPC_SPEEDUP;
        assert_eq!(
            measured,
            b.class.prefetch_friendly,
            "{}: IPC speedup {:+.0}%",
            b.name,
            imp.ipc_speedup() * 100.0
        );
    }
}

#[test]
fn fig3_way_sensitivity_matches_declared_class() {
    let (sys, cfg) = cfgs();
    // Full 20-point sweeps are done by `repro fig3`; the invariant needs
    // only the two interesting operating points.
    for b in spec::roster() {
        let narrow = run_alone(b, &sys, &cfg, true, Some(4)).ipc;
        let wide = run_alone(b, &sys, &cfg, true, Some(20)).ipc;
        if b.class.llc_sensitive {
            assert!(
                wide > narrow * 1.2,
                "{}: should be way-sensitive (4w {narrow:.3}, 20w {wide:.3})",
                b.name
            );
        } else {
            assert!(
                wide < narrow * 1.2,
                "{}: should be way-insensitive (4w {narrow:.3}, 20w {wide:.3})",
                b.name
            );
        }
    }
}

#[test]
fn demand_intensity_matches_declared_class() {
    let (sys, cfg) = cfgs();
    for b in spec::roster() {
        let r = run_alone(b, &sys, &cfg, false, None);
        let measured = r.demand_bpc > thresholds::DEMAND_INTENSIVE_BPC;
        assert_eq!(
            measured, b.class.demand_intensive,
            "{}: demand BW {:.3} B/cycle",
            b.name, r.demand_bpc
        );
    }
}

#[test]
fn friendly_benchmarks_lose_heavily_without_prefetch() {
    // The paper: disabling prefetching can cost friendly applications >50%.
    let (sys, cfg) = cfgs();
    let worst = spec::friendly()
        .iter()
        .map(|b| {
            let imp = prefetch_impact(b, &sys, &cfg);
            imp.off.ipc / imp.on.ipc
        })
        .fold(f64::INFINITY, f64::min);
    assert!(worst < 0.67, "some friendly benchmark should lose >33% (kept {worst:.2})");
}
