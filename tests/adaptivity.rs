//! Controller adaptivity across program phases: the reason CMM re-detects
//! every epoch (paper Sec. III / footnote 3) is that the `Agg` set is a
//! property of the current phase, not of the program. These tests drive
//! phase-alternating workloads through the driver and check that decisions
//! track the phases.

use cmm_core::backend;
use cmm_core::driver::Driver;
use cmm_core::frontend::DetectorConfig;
use cmm_core::policy::{ControllerConfig, Mechanism};
use cmm_sim::config::SystemConfig;
use cmm_sim::workload::Workload;
use cmm_sim::System;
use cmm_workloads::phased::stream_compute_phases;
use cmm_workloads::spec;

fn phased_machine(period: u64) -> System {
    let cfg = SystemConfig::scaled(4);
    let llc = cfg.llc.size_bytes;
    let ws: Vec<Box<dyn Workload + Send>> = vec![
        Box::new(stream_compute_phases(llc, 1 << 36, 3, period)),
        Box::new(spec::by_name("mcf_refine").unwrap().instantiate(llc, 2 << 36, 5)),
        Box::new(spec::by_name("povray_rt").unwrap().instantiate(llc, 3 << 36, 5)),
        Box::new(spec::by_name("gobmk_ai").unwrap().instantiate(llc, 4 << 36, 5)),
    ];
    System::new(cfg, ws)
}

#[test]
fn detector_sees_phases_come_and_go() {
    // Long phases (~1M ops each): consecutive sampling intervals land in
    // different phases and must disagree about core 0's aggressiveness.
    let mut sys = phased_machine(1_000_000);
    sys.run(400_000);
    let ctrl = ControllerConfig::default();
    let det_cfg = DetectorConfig::default();
    let mut verdicts = Vec::new();
    for _ in 0..12 {
        let deltas = backend::sample(&mut sys, 100_000);
        verdicts.push(cmm_core::frontend::detect_agg(&deltas, &det_cfg).contains(&0));
        sys.run(400_000);
    }
    assert!(verdicts.iter().any(|&v| v), "stream phase must be detected: {verdicts:?}");
    assert!(!verdicts.iter().all(|&v| v), "compute phase must not be: {verdicts:?}");
    let _ = ctrl;
}

#[test]
fn cmm_driver_tracks_phase_changes() {
    // The Agg-set history across epochs must change as the phases flip —
    // a static one-shot classification would hold one value forever.
    let sys = phased_machine(600_000);
    let ctrl = ControllerConfig { execution_epoch: 500_000, ..ControllerConfig::default() };
    let mut drv = Driver::new(sys, Mechanism::CmmA, ctrl);
    drv.system_mut().run(300_000);
    drv.run_total(8_000_000);
    let history = drv.agg_history();
    assert!(history.len() >= 8, "{history:?}");
    let distinct: std::collections::HashSet<usize> = history.iter().copied().collect();
    assert!(distinct.len() >= 2, "Agg-set size must vary across phases: {history:?}");
}

#[test]
fn partition_follows_the_aggressor_phase() {
    // During a stream phase core 0 should end up partitioned; during a
    // compute phase it should not. Sample the mask right after epochs in
    // each phase.
    let sys = phased_machine(1_500_000);
    let ctrl = ControllerConfig { execution_epoch: 400_000, ..ControllerConfig::default() };
    let mut drv = Driver::new(sys, Mechanism::PrefCp, ctrl);
    drv.system_mut().run(200_000);
    let full = (1u64 << drv.system().llc_ways()) - 1;
    let mut masks = Vec::new();
    for _ in 0..14 {
        drv.epoch();
        masks.push(drv.system().effective_mask(0));
        drv.system_mut().run(400_000);
    }
    assert!(masks.iter().any(|&m| m != full), "stream phase should partition core 0: {masks:?}");
    assert!(masks.contains(&full), "compute phase should free core 0: {masks:?}");
}
