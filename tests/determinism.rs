//! Reproducibility: identical seeds and configurations must give
//! bit-identical results across the whole stack — workload generation,
//! simulation, detection, and the full managed run. Without this, the
//! baseline and mechanism runs would not see the same instruction streams
//! and every figure would be noise.

use cmm_core::experiment::{run_mix, ExperimentConfig};
use cmm_core::policy::Mechanism;
use cmm_sim::config::SystemConfig;
use cmm_sim::System;
use cmm_workloads::{build_mixes, spec};

#[test]
fn identical_systems_produce_identical_pmu_streams() {
    let run = || {
        let cfg = SystemConfig::scaled(2);
        let llc = cfg.llc.size_bytes;
        let ws = vec![
            Box::new(spec::by_name("bwaves3d").unwrap().instantiate(llc, 1 << 36, 3)) as _,
            Box::new(spec::by_name("rand_access").unwrap().instantiate(llc, 2 << 36, 4)) as _,
        ];
        let mut sys = System::new(cfg, ws);
        sys.run(500_000);
        sys.pmu_all()
    };
    assert_eq!(run(), run());
}

#[test]
fn full_managed_runs_are_deterministic() {
    let mix = build_mixes(11, 1).remove(1);
    let cfg = ExperimentConfig::quick();
    let a = run_mix(&mix, Mechanism::CmmA, &cfg);
    let b = run_mix(&mix, Mechanism::CmmA, &cfg);
    assert_eq!(a.ipcs, b.ipcs);
    assert_eq!(a.mem_bytes, b.mem_bytes);
    assert_eq!(a.stalls_l2, b.stalls_l2);
}

#[test]
fn different_mix_seeds_change_results() {
    let cfg = ExperimentConfig::quick();
    let a = run_mix(&build_mixes(1, 1)[1], Mechanism::Baseline, &cfg);
    let b = run_mix(&build_mixes(2, 1)[1], Mechanism::Baseline, &cfg);
    assert_ne!(a.ipcs, b.ipcs, "distinct seeds should produce distinct mixes");
}

#[test]
fn workload_instances_do_not_alias_address_spaces() {
    // Two cores running the same benchmark must see disjoint addresses;
    // otherwise they would share cache lines and the isolation results
    // would be meaningless.
    let mix = build_mixes(3, 1).remove(2); // Pref Unfri often repeats benchmarks
    let ws = mix.instantiate(2560 << 10);
    assert_eq!(ws.len(), 8);
    // Bases are (i+1) << 36, far beyond any working set.
    // Indirect check: run and confirm per-core traffic is attributed.
    let cfg = SystemConfig::scaled(8);
    let mut sys = System::new(cfg, ws);
    sys.run(300_000);
    for c in 0..8 {
        assert!(sys.pmu(c).instructions > 0, "core {c} ran");
    }
}
