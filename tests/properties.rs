//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* workload mix, detector input, or partition request.

use cmm_core::backend::{self, Detection, PartitionPlan};
use cmm_core::frontend::{detect_agg, metrics, DetectorConfig};
use cmm_metrics::{harmonic_speedup, hm_ipc, kmeans_1d, weighted_speedup};
use cmm_sim::msr::mask_is_contiguous;
use cmm_sim::pmu::Pmu;
use proptest::prelude::*;

fn arb_pmu() -> impl Strategy<Value = Pmu> {
    (1_000u64..10_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000)
        .prop_map(|(cycles, pf_req, pf_miss, dm_req, dm_miss)| Pmu {
            cycles,
            instructions: cycles / 2,
            l2_pf_req: pf_req,
            l2_pf_miss: pf_miss.min(pf_req),
            l2_dm_req: dm_req,
            l2_dm_miss: dm_miss.min(dm_req),
            ..Pmu::default()
        })
}

proptest! {
    #[test]
    fn detector_output_is_sorted_subset(deltas in proptest::collection::vec(arb_pmu(), 1..16)) {
        let agg = detect_agg(&deltas, &DetectorConfig::default());
        prop_assert!(agg.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(agg.iter().all(|&c| c < deltas.len()));
    }

    #[test]
    fn metrics_never_nan(d in arb_pmu()) {
        let m = metrics(&d);
        for v in [m.l2_pf_miss_frac, m.l2_ptr, m.pga, m.l2_pmr, m.l2_ppm, m.llc_pt] {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn pmr_and_frac_are_fractions(d in arb_pmu()) {
        let m = metrics(&d);
        prop_assert!(m.l2_pmr <= 1.0 + 1e-9);
        prop_assert!(m.l2_pf_miss_frac <= 1.0 + 1e-9);
    }

    #[test]
    fn partition_plans_always_valid(
        agg in proptest::collection::btree_set(0usize..8, 0..8),
        friendly_sel in proptest::collection::vec(any::<bool>(), 8),
        ways in 4u32..=20,
        scale in 0.5f64..3.0,
    ) {
        let agg: Vec<usize> = agg.into_iter().collect();
        let friendly: Vec<usize> =
            agg.iter().copied().filter(|&c| friendly_sel[c]).collect();
        let unfriendly: Vec<usize> =
            agg.iter().copied().filter(|&c| !friendly_sel[c]).collect();
        let det = Detection {
            interval1: Vec::new(),
            agg: agg.clone(),
            friendly,
            unfriendly,
            profiling_cycles: 0,
        };
        let plans = [
            Some(cmm_core::backend::cp::pref_cp_plan(&det, 8, ways, scale, 1)),
            Some(cmm_core::backend::cp::pref_cp2_plan(&det, 8, ways, scale, 1)),
            cmm_core::backend::cmm::cmm_plan(cmm_core::backend::cmm::Variant::A, &det, 8, ways, scale, 1),
            cmm_core::backend::cmm::cmm_plan(cmm_core::backend::cmm::Variant::B, &det, 8, ways, scale, 1),
            cmm_core::backend::cmm::cmm_plan(cmm_core::backend::cmm::Variant::C, &det, 8, ways, scale, 1),
        ];
        for plan in plans.into_iter().flatten() {
            check_plan(&plan, ways)?;
        }
    }

    #[test]
    fn dunn_plans_always_valid(
        stalls in proptest::collection::vec(0u64..1_000_000, 2..12),
        ways in 4u32..=20,
        clusters in 2usize..=5,
    ) {
        let deltas: Vec<Pmu> = stalls
            .iter()
            .map(|&s| Pmu { cycles: 1_000_000, stalls_l2_pending: s, ..Pmu::default() })
            .collect();
        let plan = cmm_core::backend::dunn::dunn_plan(&deltas, ways, clusters);
        check_plan(&plan, ways)?;
        prop_assert_eq!(plan.assignments.len(), deltas.len());
    }

    #[test]
    fn hm_ipc_bounded_by_min_and_max(ipcs in proptest::collection::vec(0.01f64..4.0, 1..16)) {
        let hm = hm_ipc(&ipcs);
        let min = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ipcs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(hm >= min - 1e-9 && hm <= max + 1e-9);
    }

    #[test]
    fn hs_invariant_under_uniform_slowdown(
        alone in proptest::collection::vec(0.1f64..4.0, 1..9),
        factor in 0.1f64..1.0,
    ) {
        let together: Vec<f64> = alone.iter().map(|a| a * factor).collect();
        let hs = harmonic_speedup(&alone, &together);
        prop_assert!((hs - factor).abs() < 1e-9);
    }

    #[test]
    fn ws_of_identical_runs_is_core_count(ipcs in proptest::collection::vec(0.1f64..4.0, 1..9)) {
        prop_assert!((weighted_speedup(&ipcs, &ipcs) - ipcs.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn kmeans_assigns_to_nearest_centroid(
        values in proptest::collection::vec(-1e6f64..1e6, 1..32),
        k in 1usize..5,
    ) {
        let r = kmeans_1d(&values, k);
        for (i, &v) in values.iter().enumerate() {
            let assigned = r.centroids[r.assignments[i]];
            for &c in &r.centroids {
                prop_assert!(
                    (v - assigned).abs() <= (v - c).abs() + 1e-6,
                    "value {v} assigned to {assigned}, nearer {c}"
                );
            }
        }
    }

    #[test]
    fn throttle_groups_partition_the_agg_set(
        ptr in proptest::collection::vec(0u64..100_000, 8),
        agg in proptest::collection::btree_set(0usize..8, 1..8),
        groups in 1usize..4,
    ) {
        let deltas: Vec<Pmu> = ptr
            .iter()
            .map(|&p| Pmu { cycles: 1_000_000, l2_pf_miss: p, l2_pf_req: p + 1, ..Pmu::default() })
            .collect();
        let agg: Vec<usize> = agg.into_iter().collect();
        let gs = backend::throttle_groups(&agg, &deltas, 3, groups);
        let mut flat: Vec<usize> = gs.iter().flatten().copied().collect();
        flat.sort_unstable();
        prop_assert_eq!(flat, agg, "groups must partition the Agg set exactly");
    }
}

fn check_plan(plan: &PartitionPlan, ways: u32) -> Result<(), TestCaseError> {
    for &(_, mask) in &plan.masks {
        prop_assert!(mask != 0);
        prop_assert!(mask_is_contiguous(mask));
        prop_assert!(mask < (1u64 << ways) || ways == 64);
    }
    for &(core, clos) in &plan.assignments {
        prop_assert!(core < 8 || plan.assignments.len() > 8);
        prop_assert!(
            plan.masks.iter().any(|(c, _)| *c == clos),
            "core {core} assigned to unprogrammed CLOS {clos}"
        );
    }
    Ok(())
}
